(* §7 machinery: cycle-promise instances, the UNIONSIZECP protocol, the
   EQUALITYCP reduction (Theorem 8), the Sperner rank (Lemma 11), and
   the bound evaluators. *)

open Ftagg
open Helpers

let test_cycle_promise_validation () =
  Alcotest.check_raises "promise violated"
    (Invalid_argument "Cycle_promise.make: cycle promise violated") (fun () ->
      ignore (Cycle_promise.make ~n:2 ~q:3 ~x:[| 0; 0 |] ~y:[| 2; 0 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Cycle_promise.make: character out of range") (fun () ->
      ignore (Cycle_promise.make ~n:1 ~q:3 ~x:[| 3 |] ~y:[| 0 |]))

let test_cycle_promise_wraparound () =
  (* q-1 -> 0 is a legal promise step *)
  let inst = Cycle_promise.make ~n:1 ~q:4 ~x:[| 3 |] ~y:[| 0 |] in
  check_int "union counts x<>0" 1 (Cycle_promise.union_size inst);
  check_true "not equal" (not (Cycle_promise.equal inst))

let test_union_size_ground_truth () =
  let inst = Cycle_promise.make ~n:4 ~q:3 ~x:[| 0; 0; 1; 2 |] ~y:[| 0; 1; 1; 0 |] in
  (* i=0: both 0 -> out; i=1: y=1 -> in; i=2,3: x<>0 -> in *)
  check_int "union size" 3 (Cycle_promise.union_size inst)

let test_unionsize_exact_small () =
  (* Exhaustive check over all promise instances for small n, q. *)
  let q = 3 and n = 4 in
  let rec strings k acc =
    if k = 0 then acc
    else
      strings (k - 1) (List.concat_map (fun s -> List.init q (fun c -> c :: s)) acc)
  in
  let all_x = strings n [ [] ] in
  List.iter
    (fun xl ->
      let x = Array.of_list xl in
      (* enumerate all promise-respecting y via bitmask of shifts *)
      for mask = 0 to (1 lsl n) - 1 do
        let y =
          Array.mapi (fun i xi -> if mask land (1 lsl i) <> 0 then (xi + 1) mod q else xi) x
        in
        let inst = Cycle_promise.make ~n ~q ~x ~y in
        let o = Unionsize.solve inst in
        check_int "exhaustive unionsize" (Cycle_promise.union_size inst) o.Unionsize.answer
      done)
    all_x

let test_unionsize_sparse_instances () =
  let rng = Prng.create 4 in
  for _ = 1 to 100 do
    let n = 1 + Prng.int rng 200 in
    let q = 2 + Prng.int rng 20 in
    let inst = Cycle_promise.random_sparse ~rng ~n ~q ~zero_frac:0.7 in
    let o = Unionsize.solve inst in
    check_int "sparse unionsize" (Cycle_promise.union_size inst) o.Unionsize.answer
  done

let test_unionsize_cc_within_bound () =
  (* Measured bits stay within a small constant of the paper's
     O(n/q·log n + log q) closed form. *)
  List.iter
    (fun (n, q) ->
      let rng = Prng.create (n + q) in
      let inst = Cycle_promise.random ~rng ~n ~q () in
      let o = Unionsize.solve inst in
      let bound = Bounds.unionsize_upper ~n ~q in
      check_true
        (Printf.sprintf "n=%d q=%d: %d bits vs bound %.0f" n q o.Unionsize.total_bits bound)
        (float_of_int o.Unionsize.total_bits <= (4.0 *. bound) +. 64.0))
    [ (100, 2); (1000, 4); (1000, 32); (10000, 16); (10000, 128); (500, 500) ]

let test_unionsize_cc_above_lower_bound () =
  (* Sanity: no measured run beats the Theorem 12 lower bound. *)
  List.iter
    (fun (n, q) ->
      let rng = Prng.create (n * q) in
      let inst = Cycle_promise.random ~rng ~n ~q () in
      let o = Unionsize.solve inst in
      check_true "measured >= lower bound"
        (float_of_int o.Unionsize.total_bits >= Bounds.unionsize_lower ~n ~q))
    [ (1000, 4); (4096, 8); (10000, 32) ]

let test_equality_reduction_correct () =
  let rng = Prng.create 6 in
  for i = 1 to 300 do
    let n = 1 + Prng.int rng 64 in
    let q = 2 + Prng.int rng 16 in
    let inst =
      if i mod 3 = 0 then Cycle_promise.random ~rng ~n ~q ~force_equal:true ()
      else Cycle_promise.random ~rng ~n ~q ()
    in
    let o = Equality.solve inst in
    check_bool "equality verdict" (Cycle_promise.equal inst) o.Equality.equal
  done

let test_equality_overhead_is_logarithmic () =
  (* Theorem 8: the reduction adds only O(log q) + O(log n) bits. *)
  List.iter
    (fun (n, q) ->
      let rng = Prng.create 7 in
      let inst = Cycle_promise.random ~rng ~n ~q () in
      let o = Equality.solve inst in
      let logn = Bounds.log2 (float_of_int n) and logq = Bounds.log2 (float_of_int q) in
      check_true
        (Printf.sprintf "overhead %d vs 3(logn+logq)" o.Equality.overhead_bits)
        (float_of_int o.Equality.overhead_bits <= (3.0 *. (logn +. logq)) +. 16.0))
    [ (1000, 8); (10000, 64); (100000, 4) ]

let test_equality_trivial_baseline () =
  let rng = Prng.create 12 in
  for _ = 1 to 100 do
    let n = 1 + Prng.int rng 64 in
    let q = 2 + Prng.int rng 16 in
    let inst = Cycle_promise.random ~rng ~n ~q () in
    let o = Equality.solve_trivial inst in
    check_bool "trivial verdict" (Cycle_promise.equal inst) o.Equality.equal;
    check_true "costs about n log q"
      (o.Equality.total_bits >= n && o.Equality.total_bits <= (n * 6) + 1)
  done;
  (* the reduction beats the trivial protocol once q is large *)
  let inst = Cycle_promise.random ~rng ~n:10000 ~q:512 () in
  let red = Equality.solve inst and triv = Equality.solve_trivial inst in
  check_true "reduction cheaper at large q" (red.Equality.total_bits < triv.Equality.total_bits)

let test_lemma11_matrix_shape () =
  let m = Sperner.lemma11_matrix 5 in
  check_int "diag" 1 m.(2).(2);
  check_int "offset1" (-1) m.(2).(3);
  check_int "wrap" (-1) m.(4).(0);
  check_int "zero elsewhere" 0 m.(2).(0);
  check_true "rows sum to zero" (Sperner.rows_sum_to_zero m)

let test_lemma11_rank_sweep () =
  List.iter
    (fun q -> check_int (Printf.sprintf "rank q=%d" q) (q - 1) (Sperner.lemma11_rank q))
    [ 2; 3; 4; 5; 8; 13; 16; 31; 64; 100 ]

let test_rank_mod_p_general () =
  check_int "identity rank" 3 (Sperner.rank_mod_p [| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |]);
  check_int "dependent rows" 1 (Sperner.rank_mod_p [| [| 1; 2 |]; [| 2; 4 |] |]);
  check_int "zero matrix" 0 (Sperner.rank_mod_p [| [| 0; 0 |]; [| 0; 0 |] |]);
  check_int "negative entries" 2 (Sperner.rank_mod_p [| [| 1; -1 |]; [| 1; 1 |] |])

let test_equality_lower_bound_formula () =
  (* n * log2(1 + 1/(q-1)) >= n/(q-1) in bits-of-log2 terms per Lemma 11 *)
  List.iter
    (fun q ->
      let b = Sperner.equality_lower_bound ~n:1000 ~q in
      check_true
        (Printf.sprintf "q=%d bound vs n/(q-1)" q)
        (b >= 1000.0 /. float_of_int (q - 1) /. (log 2.0 /. 1.0) *. 0.69))
    [ 2; 3; 10; 50 ]

let test_bounds_shapes () =
  (* Theorem 1 upper bound decreases in b and increases in f. *)
  check_true "decreasing in b"
    (Bounds.sum_upper_bound ~n:1024 ~f:100 ~b:200
    <= Bounds.sum_upper_bound ~n:1024 ~f:100 ~b:50);
  check_true "increasing in f"
    (Bounds.sum_upper_bound ~n:1024 ~f:200 ~b:50
    >= Bounds.sum_upper_bound ~n:1024 ~f:100 ~b:50);
  check_true "lower below upper"
    (Bounds.sum_lower_bound ~n:1024 ~f:100 ~b:50
    <= Bounds.sum_upper_bound ~n:1024 ~f:100 ~b:50);
  (* the gap between them is polylog: within log^2 N * log b *)
  let n = 1 lsl 16 and f = 5000 and b = 64 in
  let up = Bounds.sum_upper_bound ~n ~f ~b and lo = Bounds.sum_lower_bound ~n ~f ~b in
  let polylog = Bounds.log2 (float_of_int n) ** 2.0 *. Bounds.log2 (float_of_int b) in
  check_true "polylog gap" (up /. lo <= polylog)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"unionsize protocol is exact on random instances" ~count:300
      (triple (int_range 1 128) (int_range 2 24) small_int)
      (fun (n, q, seed) ->
        let rng = Prng.create seed in
        let inst = Cycle_promise.random ~rng ~n ~q () in
        (Unionsize.solve inst).Unionsize.answer = Cycle_promise.union_size inst);
    Test.make ~name:"equality reduction agrees with ground truth" ~count:300
      (triple (int_range 1 96) (int_range 2 24) small_int)
      (fun (n, q, seed) ->
        let rng = Prng.create seed in
        let inst = Cycle_promise.random ~rng ~n ~q () in
        (Equality.solve inst).Equality.equal = Cycle_promise.equal inst);
    Test.make ~name:"random instances always satisfy the promise they claim" ~count:200
      (triple (int_range 1 64) (int_range 2 16) small_int)
      (fun (n, q, seed) ->
        let rng = Prng.create seed in
        let inst = Cycle_promise.random ~rng ~n ~q () in
        Array.for_all2
          (fun xi yi -> yi = xi || yi = (xi + 1) mod q)
          inst.Cycle_promise.x inst.Cycle_promise.y);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("cp: validation", test_cycle_promise_validation);
      ("cp: wraparound legal", test_cycle_promise_wraparound);
      ("cp: union ground truth", test_union_size_ground_truth);
      ("unionsize: exhaustive small", test_unionsize_exact_small);
      ("unionsize: sparse", test_unionsize_sparse_instances);
      ("unionsize: CC within bound", test_unionsize_cc_within_bound);
      ("unionsize: CC above lower bound", test_unionsize_cc_above_lower_bound);
      ("equality: reduction correct", test_equality_reduction_correct);
      ("equality: Theorem 8 overhead", test_equality_overhead_is_logarithmic);
      ("equality: trivial baseline", test_equality_trivial_baseline);
      ("sperner: matrix shape", test_lemma11_matrix_shape);
      ("sperner: rank sweep", test_lemma11_rank_sweep);
      ("sperner: modular rank general", test_rank_mod_p_general);
      ("sperner: lower bound formula", test_equality_lower_bound_formula);
      ("bounds: curve shapes", test_bounds_shapes);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
