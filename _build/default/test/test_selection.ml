(* SELECTION / MEDIAN via binary search over fault-tolerant COUNT. *)

open Ftagg
open Helpers

let setup ?(n = 36) ?(max_input = 50) ~seed () =
  let g = Gen.grid n in
  let rng = Prng.create seed in
  let inputs = Params.random_inputs ~rng ~n ~max_input in
  let params = params_of g ~inputs in
  (g, inputs, params)

let test_select_exact_failure_free () =
  let g, inputs, params = setup ~seed:1 () in
  let n = Array.length inputs in
  List.iter
    (fun k ->
      let o =
        Selection.select ~graph:g ~failures:(Failure.none ~n) ~params ~b:50 ~f:2 ~k ~seed:k
      in
      check_int
        (Printf.sprintf "k=%d" k)
        (Selection.kth_smallest (Array.to_list inputs) k)
        o.Selection.value)
    [ 1; 5; 18; 36 ]

let test_median_exact_failure_free () =
  let g, inputs, params = setup ~seed:2 () in
  let n = Array.length inputs in
  let o = Selection.median ~graph:g ~failures:(Failure.none ~n) ~params ~b:50 ~f:2 ~seed:3 in
  check_int "median" (Selection.kth_smallest (Array.to_list inputs) ((n + 1) / 2)) o.Selection.value

let test_probe_count_logarithmic () =
  let g, _, params = setup ~max_input:63 ~seed:3 () in
  let o =
    Selection.select ~graph:g ~failures:(Failure.none ~n:36) ~params ~b:50 ~f:2 ~k:10 ~seed:4
  in
  (* binary search over [0, 63]: exactly 6 probes *)
  check_int "log2 probes" 6 o.Selection.probes

let test_select_interval_under_failures () =
  (* Under failures the result lies between the k-th smallest over all
     inputs and the k-th smallest over the survivors. *)
  let g, inputs, params = setup ~seed:5 () in
  List.iter
    (fun seed ->
      let failures =
        Failure.random g ~rng:(Prng.create (seed * 17)) ~budget:4 ~max_round:2000
      in
      let k = 12 in
      let o = Selection.select ~graph:g ~failures ~params ~b:50 ~f:4 ~k ~seed in
      let all_kth = Selection.kth_smallest (Array.to_list inputs) k in
      let survivors =
        Path.reachable_from_root (Graph.remove_nodes g (Failure.crashed_nodes failures))
      in
      let surv_inputs = List.map (fun i -> inputs.(i)) survivors in
      let surv_kth =
        if k <= List.length surv_inputs then Selection.kth_smallest surv_inputs k
        else params.Params.max_input
      in
      check_true
        (Printf.sprintf "seed %d: %d in [%d, %d]" seed o.Selection.value all_kth surv_kth)
        (o.Selection.value >= all_kth && o.Selection.value <= surv_kth))
    [ 1; 2; 3; 4 ]

let test_select_k_validation () =
  let g, _, params = setup ~seed:6 () in
  Alcotest.check_raises "k >= 1" (Invalid_argument "Selection.select: k must be >= 1")
    (fun () ->
      ignore
        (Selection.select ~graph:g ~failures:(Failure.none ~n:36) ~params ~b:50 ~f:2 ~k:0
           ~seed:1))

let test_kth_smallest_reference () =
  check_int "k=1" 1 (Selection.kth_smallest [ 3; 1; 2 ] 1);
  check_int "k=3" 3 (Selection.kth_smallest [ 3; 1; 2 ] 3);
  Alcotest.check_raises "k too large" (Invalid_argument "Selection.kth_smallest")
    (fun () -> ignore (Selection.kth_smallest [ 1 ] 2))

let test_metrics_accumulate_across_probes () =
  let g, _, params = setup ~seed:7 () in
  let o =
    Selection.select ~graph:g ~failures:(Failure.none ~n:36) ~params ~b:50 ~f:2 ~k:5 ~seed:8
  in
  check_true "positive cc" (Metrics.cc o.Selection.metrics > 0);
  check_true "rounds cover all probes" (o.Selection.rounds > o.Selection.probes * 100)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"selection exact failure-free on random inputs" ~count:20
      (pair (int_range 1 25) small_int)
      (fun (k, seed) ->
        let g = Topo.grid 25 in
        let rng = Prng.create seed in
        let inputs = Params.random_inputs ~rng ~n:25 ~max_input:40 in
        let params = params_of g ~inputs in
        let o =
          Selection.select ~graph:g ~failures:(Failure.none ~n:25) ~params ~b:50 ~f:1 ~k
            ~seed
        in
        o.Selection.value = Selection.kth_smallest (Array.to_list inputs) k);
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("select: exact failure-free", test_select_exact_failure_free);
      ("select: median", test_median_exact_failure_free);
      ("select: probe count", test_probe_count_logarithmic);
      ("select: interval under failures", test_select_interval_under_failures);
      ("select: k validation", test_select_k_validation);
      ("select: reference kth", test_kth_smallest_reference);
      ("select: metrics accumulate", test_metrics_accumulate_across_probes);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
