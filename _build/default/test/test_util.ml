(* Unit tests for ftagg_util: Prng, Bits, Stats, Table. *)

open Ftagg
open Helpers

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_true "same seed, same stream" (Prng.int64 a = Prng.int64 b)
  done

let test_prng_distinct_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check_int "different seeds diverge" 0 !same

let test_prng_int_range () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    check_true "int in [0,10)" (v >= 0 && v < 10)
  done

let test_prng_int_covers () =
  let g = Prng.create 8 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int g 5) <- true
  done;
  Array.iteri (fun i s -> check_true (Printf.sprintf "value %d drawn" i) s) seen

let test_prng_in_range () =
  let g = Prng.create 9 in
  for _ = 1 to 500 do
    let v = Prng.in_range g 5 9 in
    check_true "in_range inclusive" (v >= 5 && v <= 9)
  done

let test_prng_split_independent () =
  let g = Prng.create 11 in
  let child = Prng.split g in
  (* The child stream must not replay the parent stream. *)
  let parent_next = Prng.int64 g in
  let child_next = Prng.int64 child in
  check_true "split streams differ" (parent_next <> child_next)

let test_prng_copy () =
  let g = Prng.create 12 in
  ignore (Prng.int64 g);
  let h = Prng.copy g in
  check_true "copy replays identically" (Prng.int64 g = Prng.int64 h)

let test_prng_shuffle_permutation () =
  let g = Prng.create 13 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Array.iteri (fun i v -> check_int "shuffle is a permutation" i v) sorted

let test_prng_sample_without_replacement () =
  let g = Prng.create 14 in
  for _ = 1 to 50 do
    let s = Prng.sample_without_replacement g 5 20 in
    check_int "sample size" 5 (List.length s);
    check_int "sample distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> check_true "sample in range" (v >= 0 && v < 20)) s
  done

let test_prng_float_bounds () =
  let g = Prng.create 15 in
  for _ = 1 to 500 do
    let v = Prng.float g 2.5 in
    check_true "float in [0, 2.5)" (v >= 0.0 && v < 2.5)
  done

let test_prng_bool_balanced () =
  let g = Prng.create 16 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool g then incr trues
  done;
  check_true "bool roughly fair" (!trues > 400 && !trues < 600)

let test_bits_log2 () =
  check_int "log2_floor 1" 0 (Bits.log2_floor 1);
  check_int "log2_floor 2" 1 (Bits.log2_floor 2);
  check_int "log2_floor 3" 1 (Bits.log2_floor 3);
  check_int "log2_floor 1024" 10 (Bits.log2_floor 1024);
  check_int "log2_ceil 1" 0 (Bits.log2_ceil 1);
  check_int "log2_ceil 2" 1 (Bits.log2_ceil 2);
  check_int "log2_ceil 3" 2 (Bits.log2_ceil 3);
  check_int "log2_ceil 1025" 11 (Bits.log2_ceil 1025)

let test_bits_for () =
  check_int "bits_for 0" 0 (Bits.bits_for 0);
  check_int "bits_for 1" 1 (Bits.bits_for 1);
  check_int "bits_for 2" 1 (Bits.bits_for 2);
  check_int "bits_for 256" 8 (Bits.bits_for 256);
  check_int "bits_for 257" 9 (Bits.bits_for 257);
  check_int "bits_for_value 255" 8 (Bits.bits_for_value 255);
  check_int "bits_for_value 256" 9 (Bits.bits_for_value 256)

let test_bits_pow2 () =
  check_int "pow2 0" 1 (Bits.pow2 0);
  check_int "pow2 10" 1024 (Bits.pow2 10);
  Alcotest.check_raises "pow2 rejects negatives" (Invalid_argument "Bits.pow2") (fun () ->
      ignore (Bits.pow2 (-1)))

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_int "n" 5 s.Stats.n;
  check_true "mean" (Float.abs (s.Stats.mean -. 3.0) < 1e-9);
  check_true "min" (s.Stats.min = 1.0);
  check_true "max" (s.Stats.max = 5.0);
  check_true "median" (s.Stats.median = 3.0);
  check_true "stddev" (Float.abs (s.Stats.stddev -. sqrt 2.5) < 1e-9)

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_true "p50" (Stats.percentile 50.0 xs = 50.0);
  check_true "p90" (Stats.percentile 90.0 xs = 90.0);
  check_true "p100" (Stats.percentile 100.0 xs = 100.0)

let test_stats_empty_raises () =
  Alcotest.check_raises "mean of empty" (Invalid_argument "Stats.mean: empty sample")
    (fun () -> ignore (Stats.mean []))

let test_table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_int_row t [ 7; 42 ];
  let s = Table.render t in
  check_true "title present" (String.length s > 0 && String.sub s 0 4 = "demo");
  check_true "contains row" (String.length s > 20)

let test_table_mismatched_row () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "row arity" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"prng int always within bound" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Prng.create seed in
        let v = Prng.int g bound in
        v >= 0 && v < bound);
    Test.make ~name:"bits_for is monotone" ~count:200
      (pair (int_range 0 100000) (int_range 0 100000))
      (fun (a, b) ->
        let a, b = (min a b, max a b) in
        Bits.bits_for a <= Bits.bits_for b);
    Test.make ~name:"bits_for_value v fits v" ~count:500 (int_range 0 1000000) (fun v ->
        let w = Bits.bits_for_value v in
        v < 1 lsl (max w 1));
  ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("prng: deterministic", test_prng_deterministic);
      ("prng: distinct seeds", test_prng_distinct_seeds);
      ("prng: int range", test_prng_int_range);
      ("prng: int covers range", test_prng_int_covers);
      ("prng: in_range", test_prng_in_range);
      ("prng: split independence", test_prng_split_independent);
      ("prng: copy", test_prng_copy);
      ("prng: shuffle permutes", test_prng_shuffle_permutation);
      ("prng: sample without replacement", test_prng_sample_without_replacement);
      ("prng: float bounds", test_prng_float_bounds);
      ("prng: bool balanced", test_prng_bool_balanced);
      ("bits: log2", test_bits_log2);
      ("bits: bits_for", test_bits_for);
      ("bits: pow2", test_bits_pow2);
      ("stats: summary", test_stats_summary);
      ("stats: percentile", test_stats_percentile);
      ("stats: empty raises", test_stats_empty_raises);
      ("table: render", test_table_render);
      ("table: row arity", test_table_mismatched_row);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
