(* Tests for the CAAF layer: operator laws, domain widths, correctness
   intervals. *)

open Ftagg
open Helpers

let instances_with_input_gen =
  (* Pair each instance with a generator of valid inputs for it. *)
  [
    (Instances.sum, 1000);
    (Instances.count, 1);
    (Instances.max_, 1000);
    (Instances.min_, 1000);
    (Instances.bool_or, 1);
    (Instances.bool_and, 1);
    (Instances.gcd, 1000);
    (Instances.modsum 97, 96);
  ]

let test_identity_laws () =
  List.iter
    (fun ((caaf : Caaf.t), max_input) ->
      let g = Prng.create 2 in
      for _ = 1 to 50 do
        let v = Prng.int g (max_input + 1) in
        check_int
          (Printf.sprintf "%s: identity is neutral" caaf.Caaf.name)
          v
          (caaf.Caaf.combine caaf.Caaf.identity v)
      done)
    instances_with_input_gen

let test_aggregate_empty () =
  check_int "sum of nothing" 0 (Caaf.aggregate Instances.sum []);
  check_int "and of nothing" 1 (Caaf.aggregate Instances.bool_and [])

let test_aggregate_examples () =
  check_int "sum" 10 (Caaf.aggregate Instances.sum [ 1; 2; 3; 4 ]);
  check_int "count" 4 (Caaf.aggregate Instances.count [ 1; 1; 1; 1 ]);
  check_int "max" 9 (Caaf.aggregate Instances.max_ [ 3; 9; 1 ]);
  check_int "min" 1 (Caaf.aggregate Instances.min_ [ 3; 9; 1 ]);
  check_int "or" 1 (Caaf.aggregate Instances.bool_or [ 0; 0; 1 ]);
  check_int "and" 0 (Caaf.aggregate Instances.bool_and [ 1; 0; 1 ]);
  check_int "gcd" 6 (Caaf.aggregate Instances.gcd [ 12; 18; 30 ]);
  check_int "modsum" 3 (Caaf.aggregate (Instances.modsum 7) [ 5; 5 ])

let test_domain_bits () =
  check_int "sum width" 10 (Instances.sum.Caaf.domain_bits ~n:100 ~max_input:10);
  check_int "count width" 7 (Instances.count.Caaf.domain_bits ~n:100 ~max_input:10);
  check_int "or width" 1 (Instances.bool_or.Caaf.domain_bits ~n:100 ~max_input:1);
  check_int "max width" 4 (Instances.max_.Caaf.domain_bits ~n:100 ~max_input:10)

let test_interval_monotone_increasing () =
  let lo, hi = Caaf.correct_interval Instances.sum ~base:[ 1; 2 ] ~optional:[ 10; 20 ] in
  check_int "sum lo" 3 lo;
  check_int "sum hi" 33 hi;
  let lo, hi = Caaf.correct_interval Instances.max_ ~base:[ 5 ] ~optional:[ 9 ] in
  check_int "max lo" 5 lo;
  check_int "max hi" 9 hi

let test_interval_monotone_decreasing () =
  let lo, hi = Caaf.correct_interval Instances.min_ ~base:[ 5 ] ~optional:[ 2 ] in
  check_int "min lo" 2 lo;
  check_int "min hi" 5 hi;
  (* gcd is classified non-monotone (zero inputs break numeric
     monotonicity); the exhaustive interval is still exact *)
  let lo, hi = Caaf.correct_interval Instances.gcd ~base:[ 12; 18 ] ~optional:[ 9 ] in
  check_int "gcd lo" 3 lo;
  check_int "gcd hi" 6 hi;
  let lo, hi = Caaf.correct_interval Instances.gcd ~base:[ 0 ] ~optional:[ 4; 6 ] in
  check_int "gcd all-zero base lo" 0 lo;
  check_int "gcd all-zero base hi" 6 hi

let test_interval_non_monotone_exact () =
  (* modsum 10 over base [5], optional [7]: subsets give 5 and 2 *)
  let lo, hi = Caaf.correct_interval (Instances.modsum 10) ~base:[ 5 ] ~optional:[ 7 ] in
  check_int "modsum lo" 2 lo;
  check_int "modsum hi" 5 hi

let test_interval_non_monotone_too_big () =
  Alcotest.check_raises "non-monotone cap"
    (Invalid_argument
       "Caaf.correct_interval: too many optional inputs for a non-monotone operator")
    (fun () ->
      ignore
        (Caaf.correct_interval (Instances.modsum 7) ~base:[]
           ~optional:(List.init 21 (fun i -> i))))

let test_is_correct () =
  check_true "inside" (Caaf.is_correct Instances.sum ~base:[ 1 ] ~optional:[ 5 ] 4);
  check_true "at lo" (Caaf.is_correct Instances.sum ~base:[ 1 ] ~optional:[ 5 ] 1);
  check_true "at hi" (Caaf.is_correct Instances.sum ~base:[ 1 ] ~optional:[ 5 ] 6);
  check_true "below" (not (Caaf.is_correct Instances.sum ~base:[ 1 ] ~optional:[ 5 ] 0));
  check_true "above" (not (Caaf.is_correct Instances.sum ~base:[ 1 ] ~optional:[ 5 ] 7))

let test_modsum_validation () =
  Alcotest.check_raises "modsum m>=2"
    (Invalid_argument "Instances.modsum: modulus must be >= 2") (fun () ->
      ignore (Instances.modsum 1))

let qcheck_tests =
  let open QCheck in
  let ops =
    List.map (fun ((c : Caaf.t), m) -> (c.Caaf.name, c, m)) instances_with_input_gen
  in
  List.concat_map
    (fun (name, (caaf : Caaf.t), max_input) ->
      let input = int_range 0 max_input in
      [
        Test.make
          ~name:(Printf.sprintf "%s: commutative" name)
          ~count:200 (pair input input)
          (fun (a, b) -> caaf.Caaf.combine a b = caaf.Caaf.combine b a);
        Test.make
          ~name:(Printf.sprintf "%s: associative" name)
          ~count:200 (triple input input input)
          (fun (a, b, c) ->
            caaf.Caaf.combine (caaf.Caaf.combine a b) c
            = caaf.Caaf.combine a (caaf.Caaf.combine b c));
        Test.make
          ~name:(Printf.sprintf "%s: aggregate order-independent" name)
          ~count:100
          (list_of_size Gen.(int_range 1 8) input)
          (fun xs ->
            let rev = Caaf.aggregate caaf (List.rev xs) in
            Caaf.aggregate caaf xs = rev);
        Test.make
          ~name:(Printf.sprintf "%s: partial aggregates fit the declared width" name)
          ~count:100
          (list_of_size Gen.(int_range 1 20) input)
          (fun xs ->
            let bits = caaf.Caaf.domain_bits ~n:20 ~max_input in
            let v = Caaf.aggregate caaf xs in
            v >= 0 && v < 1 lsl (max 1 bits));
      ])
    ops
  @ [
      Test.make ~name:"interval brackets any subset's aggregate (monotone ops)" ~count:200
        (pair (list_of_size Gen.(int_range 1 5) (int_range 0 50))
           (list_of_size Gen.(int_range 0 5) (int_range 0 50)))
        (fun (base, optional) ->
          (* the base (survivor set) always contains the root in real runs *)
          QCheck.assume (base <> []);
          List.for_all
            (fun caaf ->
              let lo, hi = Caaf.correct_interval caaf ~base ~optional in
              (* the base-only and everything aggregates must be inside *)
              let a = Caaf.aggregate caaf base in
              let b = Caaf.aggregate caaf (base @ optional) in
              lo <= a && a <= hi && lo <= b && b <= hi)
            [ Instances.sum; Instances.max_; Instances.min_ ]);
    ]

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("caaf: identities", test_identity_laws);
      ("caaf: aggregate empty", test_aggregate_empty);
      ("caaf: aggregate examples", test_aggregate_examples);
      ("caaf: domain widths", test_domain_bits);
      ("caaf: interval increasing", test_interval_monotone_increasing);
      ("caaf: interval decreasing", test_interval_monotone_decreasing);
      ("caaf: interval non-monotone", test_interval_non_monotone_exact);
      ("caaf: interval cap", test_interval_non_monotone_too_big);
      ("caaf: is_correct", test_is_correct);
      ("caaf: modsum validation", test_modsum_validation);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
