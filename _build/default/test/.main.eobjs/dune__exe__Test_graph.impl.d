test/test_graph.ml: Alcotest Array Ftagg Gen Graph Helpers List Path Printf QCheck QCheck_alcotest Test Topo
