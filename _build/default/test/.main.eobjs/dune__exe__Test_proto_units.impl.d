test/test_proto_units.ml: Alcotest Array Engine Failure Flood Ftagg Fun Gen Graph Helpers Lazy List Message Params Path Printf
