test/test_sim.ml: Alcotest Array Engine Failure Ftagg Gen Helpers Lazy List Metrics Printf Prng QCheck QCheck_alcotest Test Topo
