test/test_twoparty.ml: Alcotest Array Bounds Cycle_promise Equality Ftagg Helpers List Printf Prng QCheck QCheck_alcotest Sperner Test Unionsize
