test/test_selection.ml: Alcotest Array Failure Ftagg Gen Graph Helpers List Metrics Params Path Printf Prng QCheck QCheck_alcotest Selection Test Topo
