test/helpers.ml: Agg Alcotest Array Ftagg Gen List Pair Params Run
