test/test_caaf.ml: Alcotest Caaf Ftagg Gen Helpers Instances List Printf Prng QCheck QCheck_alcotest Test
