test/test_agg.ml: Agg Alcotest Array Caaf Checker Failure Ftagg Gen Graph Helpers Instances Lazy List Message Metrics Option Params Printf Prng QCheck QCheck_alcotest Run Test Topo
