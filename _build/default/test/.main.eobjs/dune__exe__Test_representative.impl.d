test/test_representative.ml: Agg Alcotest Array Checker Failure Ftagg Gen Graph Helpers Lazy List Option Pair Params Prng QCheck QCheck_alcotest Run Test Topo
