test/test_cross.ml: Agg Alcotest Array Caaf Engine Failure Folklore Ftagg Gen Graph Helpers Instances List Message Metrics Network Pair Params Printf Prng Run
