test/test_deep.ml: Agg Alcotest Array Caaf Engine Failure Format Ftagg Fun Gen Graph Helpers Instances List Message Metrics Params Printf Prng Run Trace
