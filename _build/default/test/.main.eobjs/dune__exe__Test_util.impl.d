test/test_util.ml: Alcotest Array Bits Float Ftagg Helpers List Printf Prng QCheck QCheck_alcotest Stats String Table Test
