test/main.mli:
