test/test_checker.ml: Agg Alcotest Checker Failure Ftagg Gen Graph Helpers List Params Printf Run
