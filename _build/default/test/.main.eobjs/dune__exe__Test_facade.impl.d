test/test_facade.ml: Alcotest Array Chart Failure Format Ftagg Gen Graph Helpers Instances List Network Selection String Worstcase
