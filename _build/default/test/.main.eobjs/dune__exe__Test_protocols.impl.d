test/test_protocols.ml: Alcotest Checker Failure Folklore Ftagg Gen Graph Helpers Lazy List Metrics Params Prng QCheck QCheck_alcotest Run Test Topo Tradeoff Unknown_f
