test/test_veri.ml: Agg Alcotest Failure Ftagg Gen Graph Helpers Lazy List Message Metrics Pair Params Printf Prng QCheck QCheck_alcotest Run Test Topo
