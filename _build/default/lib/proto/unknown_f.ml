module Bits = Ftagg_util.Bits

let bf_exec = -1

type how = Via_slot of int | Via_brute_force

type exec = { g : int; start : int; pair : Pair.node }

type node = {
  base : Params.t;
  me : int;
  mutable current : exec option;
  mutable bf : Brute_force.node option;
  bf_start : int;
  mutable output : (int * how) option;
}

let slots (p : Params.t) = max 1 (Bits.bits_for p.Params.n) + 1

let interval_len p = 19 * Params.cd p

let max_rounds p = (slots p * interval_len p) + (2 * Params.cd p) + 1

let create p ~me =
  {
    base = p;
    me;
    current = None;
    bf = None;
    bf_start = (slots p * interval_len p) + 1;
    output = None;
  }

let slot_params node g = { node.base with Params.t = 1 lsl g }

let root_done node = node.output <> None

let step node ~round ~inbox =
  let p = node.base in
  let is_root = node.me = Ftagg_graph.Graph.root in
  if node.output <> None then []
  else begin
    let pair_inbox y =
      List.filter_map
        (fun (sender, Message.{ exec; body }) ->
          if exec = y then Some (sender, body) else None)
        inbox
    in
    (match node.current with
    | Some { g; start; _ }
      when round - start + 1 > Pair.duration (slot_params node g) ->
      node.current <- None
    | _ -> ());
    let out = ref [] in
    (if is_root then
       let g = (round - 1) / interval_len p in
       if g < slots p && ((g * interval_len p) + 1) = round then
         node.current <-
           Some { g; start = round; pair = Pair.create (slot_params node g) ~me:node.me });
    (if (not is_root) && node.current = None then
       match
         List.find_opt
           (fun (_, m) ->
             m.Message.exec >= 1
             && match m.Message.body with Message.Tree_construct _ -> true | _ -> false)
           inbox
       with
       | Some (_, { Message.exec = e; body = Message.Tree_construct { level; _ } }) ->
         (* Execution tag e = g + 1 (tags start at 1). *)
         let g = e - 1 in
         (* A level-(s+1) node receives its first tree_construct in round
            2s+2 of the execution: the phase-1 recurrence is recv = 2·level
            (ack in the receipt round, tree_construct one round later). *)
         let rr = (2 * level) + 2 in
         node.current <-
           Some { g; start = round - rr + 1; pair = Pair.create (slot_params node g) ~me:node.me }
       | _ -> ());
    (match node.current with
    | Some { g; start; pair } ->
      let rr = round - start + 1 in
      let bodies = Pair.step pair ~rr ~inbox:(pair_inbox (g + 1)) in
      out := List.map (fun body -> Message.{ exec = g + 1; body }) bodies;
      if is_root && rr = Pair.duration (slot_params node g) then begin
        let v = Pair.root_verdict pair in
        (match v.Pair.result with
        | Agg.Value value when v.Pair.veri_ok -> node.output <- Some (value, Via_slot g)
        | Agg.Value _ | Agg.Aborted -> ());
        node.current <- None
      end
    | None -> ());
    if node.output = None then begin
      (if is_root && round = node.bf_start then node.bf <- Some (Brute_force.create p ~me:node.me));
      (if (not is_root) && node.bf = None
       && List.exists (fun (_, m) -> m.Message.exec = bf_exec) inbox
      then node.bf <- Some (Brute_force.create p ~me:node.me));
      match node.bf with
      | Some bf ->
        let rr = round - node.bf_start + 1 in
        let bodies = Brute_force.step bf ~rr ~inbox:(pair_inbox bf_exec) in
        out := !out @ List.map (fun body -> Message.{ exec = bf_exec; body }) bodies;
        if is_root && round = node.bf_start + Brute_force.duration p - 1 then
          node.output <- Some (Brute_force.root_result bf, Via_brute_force)
      | None -> ()
    end;
    !out
  end

let root_result node =
  match node.output with
  | Some (v, _) -> v
  | None -> invalid_arg "Unknown_f.root_result: execution not finished"

let root_how node =
  match node.output with
  | Some (_, how) -> how
  | None -> invalid_arg "Unknown_f.root_how: execution not finished"
