(** Synopsis diffusion with Flajolet–Martin sketches — the
    order-and-duplicate-insensitive approximate aggregation of Nath,
    Gibbons, Seshan & Anderson [14], cited in the paper's related work.

    Each node builds an FM synopsis of its contribution (its id for
    COUNT; [input] pseudo-elements for SUM) and every round broadcasts
    its current synopsis; receivers OR-merge.  Because merging is
    idempotent, multipath delivery costs nothing and the scheme shrugs
    off crashes that leave the graph connected — but the answer is only
    a [(1 ± ε)] estimate, never exact.  This is the classic contrast to
    the paper's zero-error protocols (benchmark E12).

    A synopsis is [k] independent bitmaps of {!bitmap_bits} bits; element
    [e] sets bit [geometric(1/2)] of bitmap [h(e) summarised per bitmap];
    the estimate is [2^(mean lowest-zero-bit) / 0.77351]. *)

type outcome = {
  estimate : float;
  relative_error : float;  (** against the true aggregate over all nodes *)
  cc : int;
  rounds : int;
}

val bitmap_bits : int
(** Bits per FM bitmap (32). *)

val run_count :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  k:int ->
  rounds:int ->
  seed:int ->
  outcome
(** Approximate COUNT of participating nodes with [k] bitmaps. *)

val run_sum :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  inputs:int array ->
  k:int ->
  rounds:int ->
  seed:int ->
  outcome
(** Approximate SUM: node [i] inserts [inputs.(i)] distinct
    pseudo-elements.  Inputs must be modest (the insertion loop is
    linear in the input value). *)
