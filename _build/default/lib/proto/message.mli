(** The wire-message vocabulary of every protocol in the library, with the
    paper's bit accounting.

    A logical message costs a constant 5-bit type tag, the sender's id
    (the paper: "the sender of a message always attaches its id"), and its
    fields at their natural widths (ids [⌈log₂N⌉] bits, levels
    [⌈log₂(cd+1)⌉] bits, aggregate values at the CAAF's domain width).

    Executions that can overlap in time (Algorithm 1 runs several AGG+VERI
    pairs, Folklore several epochs) tag each message with an execution
    number.  Real deployments distinguish executions by the synchronised
    round counter, so the tag costs no bits. *)

type body =
  (* AGG §4.1 — tree construction & aggregation *)
  | Tree_construct of { level : int; ancestors : int list }
      (** [ancestors]: the sender's nearest min(2t, level) ancestor ids,
          nearest first *)
  | Ack of { parent : int }
  | Aggregation of { psum : int; max_level : int }
  | Critical_failure of int  (** flood: node experienced a critical failure *)
  (* AGG §4.2 — speculative flooding *)
  | Flooded_psum of { source : int; psum : int }  (** flood *)
  (* AGG §4.3 — witness determinations *)
  | Dominated of int  (** flood: the node's partial sum is dominated *)
  | Compulsory of int  (** flood: ⟨compulsory‖optional, node⟩ *)
  | Agg_abort  (** flood: the §4 special symbol — a node exhausted its budget *)
  (* VERI §5.1 *)
  | Detect_failed_parent  (** flood: the root's liveness bit *)
  | Failed_parent of { node : int; depth : int }
      (** flood: [node] (the sender's parent) missed its beat;
          [depth] = sender's [max_level − level + 1] *)
  | Detect_failed_child  (** flood: the leaves' upstream liveness bit *)
  | Failed_child of int  (** flood *)
  | Lfc_tail of int  (** flood: witness determination — node tails an LFC *)
  | Not_lfc_tail of int  (** flood *)
  | Veri_overflow  (** flood: the §5.1 special symbol *)
  (* Brute force (§1) *)
  | Bf_init  (** flood *)
  | Bf_value of { source : int; value : int }  (** flood *)

type t = { exec : int; body : body }
(** A logical message within execution [exec]. *)

val bits : Params.t -> body -> int
(** Bit width charged when a node broadcasts (or forwards) the body. *)

val msg_bits : Params.t -> t -> int
(** [bits] of the body; the [exec] tag is free (see above). *)

val pp_body : Format.formatter -> body -> unit
(** Compact rendering, e.g. ["psum(3:42)"] — for traces and debugging. *)

val pp : Format.formatter -> t -> unit
(** [exec:body]. *)

val is_flood : body -> bool
(** Whether the body propagates via the flooding primitive (as opposed to
    the point-to-point-style [Tree_construct]/[Ack]/[Aggregation]). *)
