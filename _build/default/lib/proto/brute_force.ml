module Caaf = Ftagg_caaf.Caaf

type node = {
  p : Params.t;
  me : int;
  flood : Message.body Flood.t;
  values : (int, int) Hashtbl.t;  (* source -> input *)
  mutable started : bool;
  mutable output : int option;
}

let duration p = (2 * Params.cd p) + 1

let create p ~me =
  {
    p;
    me;
    flood = Flood.create ();
    values = Hashtbl.create 16;
    started = false;
    output = None;
  }

let step node ~rr ~inbox =
  let is_root = node.me = Ftagg_graph.Graph.root in
  List.iter
    (fun (_, body) ->
      if Message.is_flood body && Flood.receive node.flood body then
        match body with
        | Message.Bf_value { source; value } -> Hashtbl.replace node.values source value
        | Message.Bf_init ->
          if not node.started then begin
            node.started <- true;
            ignore
              (Flood.originate node.flood
                 (Message.Bf_value { source = node.me; value = node.p.Params.inputs.(node.me) }))
          end
        | _ -> ())
    inbox;
  if is_root && rr = 1 then begin
    node.started <- true;
    ignore (Flood.originate node.flood Message.Bf_init)
  end;
  if is_root && rr = duration node.p then begin
    let caaf = node.p.Params.caaf in
    let acc = ref node.p.Params.inputs.(node.me) in
    Hashtbl.iter
      (fun source v -> if source <> node.me then acc := caaf.Caaf.combine !acc v)
      node.values;
    node.output <- Some !acc
  end;
  Flood.drain node.flood

let root_result node =
  match node.output with
  | Some v -> v
  | None -> invalid_arg "Brute_force.root_result: execution not finished"
