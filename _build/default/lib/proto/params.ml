module Bits = Ftagg_util.Bits
module Graph = Ftagg_graph.Graph
module Path = Ftagg_graph.Path

type t = {
  n : int;
  d : int;
  c : int;
  t : int;
  max_input : int;
  caaf : Ftagg_caaf.Caaf.t;
  inputs : int array;
}

let make ?(c = 2) ?(t = 0) ?(caaf = Ftagg_caaf.Instances.sum) ~graph ~inputs () =
  let n = Graph.n graph in
  if Array.length inputs <> n then invalid_arg "Params.make: wrong inputs length";
  Array.iter (fun x -> if x < 0 then invalid_arg "Params.make: negative input") inputs;
  if t < 0 then invalid_arg "Params.make: t must be >= 0";
  if c < 1 then invalid_arg "Params.make: c must be >= 1";
  let d =
    match Path.diameter graph with
    | Some d -> max d 1
    | None -> invalid_arg "Params.make: graph is disconnected"
  in
  let max_input = Array.fold_left max 0 inputs in
  { n; d; c; t; max_input = max max_input 1; caaf; inputs }

let cd p = p.c * p.d
let id_bits p = max 1 (Bits.bits_for p.n)
let level_bits p = max 1 (Bits.bits_for_value (cd p + 1))
let value_bits p = max 1 (p.caaf.Ftagg_caaf.Caaf.domain_bits ~n:p.n ~max_input:p.max_input)

let log_n p = max 1 (Bits.bits_for p.n)

let agg_bit_budget p = ((11 * p.t) + 14) * (log_n p + 5)
let veri_bit_budget p = ((5 * p.t) + 7) * ((3 * log_n p) + 10)

let random_inputs ~rng ~n ~max_input =
  Array.init n (fun _ -> Ftagg_util.Prng.int rng (max_input + 1))
