(** The AGG protocol (§4, Algorithm 2).

    A deterministic aggregation protocol parameterised by [t >= 0] (the
    number of edge failures it intends to tolerate) with time complexity
    [7cd + 4] rounds (≤ 11c flooding rounds) and communication complexity
    [O((t+1)·log N)] bits per node.  Guarantees (Theorems 3–5):

    - with at most [t] edge failures it never aborts and outputs a
      correct result;
    - with no long failure chain it outputs a correct result or aborts;
    - a node floods the abort symbol once it has sent
      [(11t+14)(log N+5)] bits, bounding CC under arbitrary failures.

    Four sequential phases: tree construction ([2cd+1] rounds, each node
    learning its nearest [2t] ancestors), tree aggregation with critical-
    failure floods ([2cd+1]), speculative flooding of potentially blocked
    partial sums ([2cd+1]), and witness-based partial-sum selection
    ([cd+1]).

    The state machine runs on {e execution-relative} rounds [rr = 1, 2,
    ...] so callers (the standalone runner, and Algorithm 1 which embeds
    one instance per selected interval) control placement in global time. *)

type node
(** Per-node mutable protocol state for one AGG execution. *)

type result =
  | Value of int  (** the selected representative-set aggregate *)
  | Aborted  (** the special abort symbol reached the root *)

type ablation =
  | Full  (** the paper's protocol *)
  | No_speculation
      (** nodes flood their partial sum only after {e observing} for one
          extra flooding round that their parent's flooding is absent —
          too slow to fit the phase, so blocked sums are simply lost;
          quantifies why §4.2's speculation is needed *)
  | No_witnesses
      (** every flooded partial sum is accepted by the root with no
          domination analysis — demonstrates the double counting §4.3
          prevents *)

val duration : Params.t -> int
(** Rounds in one execution: [7cd + 4]. *)

val create : ?ablation:ablation -> Params.t -> me:int -> node

val step : node -> rr:int -> inbox:(int * Message.body) list -> Message.body list
(** Advance one round.  [inbox] carries (physical sender, body) pairs
    delivered this round; the return value is this node's broadcast. *)

val root_result : node -> result
(** The root's output; meaningful once [rr = duration] has executed. *)

(** {2 Introspection} — consumed by VERI and by the ground-truth checker. *)

val activated : node -> bool

val level : node -> int
(** [-1] if never activated. *)

val parent : node -> int
(** [-1] for the root or a never-activated node. *)

val children : node -> int list

val ancestors : node -> int array
(** Index 0 = self; [-1] = undefined slot. *)

val max_level : node -> int
val psum : node -> int

val crit_seen : node -> int list
(** Critical-failure ids this node saw. *)

val selected_sources : node -> int list
(** Root only: sources whose partial sums entered the output. *)

val aborted : node -> bool
