(** The doubling-trick extension for unknown [f] (abstract / full version
    of the paper).

    The conference text only states the property: when [f] is not known,
    the protocol can be run with geometrically growing guesses at the cost
    of one extra [log N] factor in CC, and its overhead then tracks the
    {e actual} number of failures — an early-termination property.  This
    module is our reconstruction: slot [g = 0, 1, 2, ...] runs one
    AGG+VERI pair with [t = 2^g] in its own [19c]-flooding-round window,
    accepting the first pair that ends with no abort and a [true]
    verdict.  An adversary must spend more than [2^g] edge failures
    {e inside} slot [g] to defeat it, so the protocol terminates by slot
    [⌈log₂(f_actual+1)⌉] and its CC is [O(f_actual·log N + log²N)]. *)

type node

type how =
  | Via_slot of int  (** accepted in slot [g] (i.e. with [t = 2^g]) *)
  | Via_brute_force

val slots : Params.t -> int
(** Number of doubling slots: [⌈log₂ N⌉ + 1] (a [t >= N] pair tolerates
    anything the model allows). *)

val max_rounds : Params.t -> int
(** Slots plus the brute-force fallback window. *)

val create : Params.t -> me:int -> node
(** The [t] field of the params is ignored. *)

val step : node -> round:int -> inbox:(int * Message.t) list -> Message.t list
val root_done : node -> bool
val root_result : node -> int
val root_how : node -> how
