type node = {
  p : Params.t;
  me : int;
  agg : Agg.node;
  mutable veri : Veri.node option;
}

type verdict = {
  result : Agg.result;
  veri_ok : bool;
}

let duration p = Agg.duration p + Veri.duration p

let create ?ablation p ~me = { p; me; agg = Agg.create ?ablation p ~me; veri = None }

let step node ~rr ~inbox =
  let agg_dur = Agg.duration node.p in
  if rr <= agg_dur then Agg.step node.agg ~rr ~inbox
  else begin
    let veri =
      match node.veri with
      | Some v -> v
      | None ->
        let v = Veri.create node.p ~me:node.me ~from_agg:node.agg in
        node.veri <- Some v;
        v
    in
    (* Straggler AGG floods still in flight are dropped here: nothing the
       root needed can arrive after its output round (every AGG flood
       completes within its own phase), so forwarding them further would
       only add bits the paper's accounting already charged at origin. *)
    let inbox =
      List.filter
        (fun (_, body) ->
          match body with
          | Message.Critical_failure _ | Message.Flooded_psum _ | Message.Dominated _
          | Message.Compulsory _ | Message.Agg_abort | Message.Tree_construct _
          | Message.Ack _ | Message.Aggregation _ ->
            false
          | _ -> true)
        inbox
    in
    Veri.step veri ~rr:(rr - agg_dur) ~inbox
  end

let root_verdict node =
  match node.veri with
  | None -> invalid_arg "Pair.root_verdict: execution not finished"
  | Some veri -> { result = Agg.root_result node.agg; veri_ok = Veri.root_verdict veri }

let agg node = node.agg
let veri node = node.veri
