(** Empirical worst-case search over topologies and adversaries.

    The paper's complexity measure [FT₀(SUM_N, f, b)] maximises a
    protocol's bottleneck communication over {e all} connected topologies
    and oblivious adversaries.  Exhausting that space is impossible, so
    this module does what an experimentalist can: sweep a topology-family
    grid crossed with an adversary-schedule grid, run the protocol on
    each cell, and report the maximising cell.  The benchmark harness
    (E14) uses it to approximate the [FT₀] landscape for Algorithm 1. *)

type adversary =
  | Adv_none
  | Adv_random of int  (** seed *)
  | Adv_burst of int  (** seed; burst a third of the way in *)
  | Adv_chain  (** id-contiguous chain kill early in the run *)
  | Adv_high_degree
  | Adv_per_interval of int  (** seed *)

val adversary_name : adversary -> string

type cell = {
  family : string;
  adversary : string;
  cc : int;
  flooding_rounds : int;
  correct : bool;
}

type landscape = {
  cells : cell list;  (** every evaluated cell *)
  worst : cell;  (** the CC-maximising cell *)
}

val sweep_tradeoff :
  n:int ->
  f:int ->
  b:int ->
  seed:int ->
  unit ->
  landscape
(** Run Algorithm 1 over every topology family × adversary cell at the
    given size.  Every cell's output is also checked for correctness
    (recorded in the cell; the caller can assert them all). *)

val default_adversaries : seed:int -> adversary list
