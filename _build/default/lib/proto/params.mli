(** Shared protocol parameters (the paper's model constants, Table 1).

    Every protocol in this library is configured by a value of this type.
    [n], [d], [c] and (where applicable) [f] and [t] are knowledge the
    paper grants the protocol; nodes never see the topology itself. *)

type t = {
  n : int;  (** number of nodes [N] *)
  d : int;  (** diameter of the failure-free topology *)
  c : int;  (** failures never raise the diameter above [c·d] *)
  t : int;  (** failures AGG/VERI intend to tolerate ([>= 0]) *)
  max_input : int;  (** inputs lie in [\[0, max_input\]] *)
  caaf : Ftagg_caaf.Caaf.t;
  inputs : int array;  (** input per node, length [n] *)
}

val make :
  ?c:int ->
  ?t:int ->
  ?caaf:Ftagg_caaf.Caaf.t ->
  graph:Ftagg_graph.Graph.t ->
  inputs:int array ->
  unit ->
  t
(** Derive parameters from a concrete topology: [d] is computed exactly.
    Defaults: [c = 2], [t = 0], [caaf = Instances.sum].  Raises if the
    graph is disconnected or [inputs] has the wrong length or a negative
    entry. *)

val cd : t -> int
(** [c·d] — the post-failure diameter bound, the paper's unit for phase
    lengths. *)

val id_bits : t -> int
(** Width of a node id: [ceil(log2 n)]. *)

val level_bits : t -> int
(** Width of a tree level (levels never exceed [cd]). *)

val value_bits : t -> int
(** Width of a partial aggregate, from the CAAF's domain. *)

val agg_bit_budget : t -> int
(** AGG's abort threshold: [(11t + 14)(log N + 5)] (§4). *)

val veri_bit_budget : t -> int
(** VERI's overflow threshold: [(5t + 7)(3·log N + 10)] (§5.1). *)

val random_inputs : rng:Ftagg_util.Prng.t -> n:int -> max_input:int -> int array
