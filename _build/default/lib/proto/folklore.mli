(** Tree-based baselines: naive TAG aggregation and the folklore
    fault-tolerant retry protocol (§1).

    Each {e epoch} is a fresh spanning-tree construction ([2cd+1] rounds)
    followed by a tree aggregation ([cd+1] rounds).  During aggregation a
    node forwards its partial sum upstream only if {e every} child
    delivered on schedule; a missed beat makes it withhold, and the
    withhold cascades to the root, which then knows the epoch was dirty
    and retries.  Each dirty epoch consumes at least one fresh node crash
    (≥ 1 fresh edge failure), so at most [f] epochs are dirty and epoch
    [f+1] succeeds: TC [O(f)] flooding rounds and CC [O(f·log N)] — the
    folklore point of Figure 1.

    [Naive] mode runs a single epoch with no withholding and outputs
    whatever reached the root — the classical TAG aggregation [12], which
    is {e not} fault-tolerant and may return an incorrect result.  It
    exists as the motivating baseline. *)

type mode =
  | Naive  (** one epoch, no failure handling, output unconditionally *)
  | Retry of int  (** retry up to the given number of epochs ([>= 1]);
                      pass [f + 1] for the folklore guarantee *)

type node

type result =
  | Value of int
  | No_clean_epoch  (** [Retry] exhausted its epochs without a clean run *)

val epoch_duration : Params.t -> int
(** [3cd + 2]. *)

val duration : Params.t -> mode -> int
(** [epoch_duration × number of epochs]. *)

val create : Params.t -> mode:mode -> me:int -> node

val step : node -> rr:int -> inbox:(int * Message.t) list -> Message.t list
(** Unlike the single-execution protocols this one speaks tagged
    {!Message.t} values directly: the epoch number is the execution tag. *)

val root_result : node -> result
val root_done : node -> bool
(** Whether the root has already accepted an epoch (enables early halt). *)

val epochs_used : node -> int
