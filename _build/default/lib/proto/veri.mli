(** The VERI protocol (§5, Algorithm 3).

    Runs immediately after an AGG execution (sharing its tree state) and
    decides whether AGG's output can be trusted.  VERI detects {e long
    failure chains} (LFCs): [t] tree-consecutive nodes, in one fragment,
    all failed by the end of AGG, whose tail still has a live local
    descendant at the end of VERI.  Guarantees (Theorems 6–7):

    - TC is [5cd + 3] rounds (≤ 8c flooding rounds) and CC is
      [O((t+1)·log N)] bits (overflow symbol at [(5t+7)(3·logN+10)]);
    - if an LFC exists, VERI outputs [false];
    - with at most [t] edge failures, VERI outputs [true];
    - in between (more than [t] failures but no LFC) VERI may err in
      either direction — the one-sided error that makes it cheap.

    Three phases: failed-parent detection ([2cd+1] rounds, root floods a
    liveness bit downstream), failed-child detection ([2cd+1] rounds,
    leaves flood a liveness bit that percolates upstream), and LFC
    determination by the same witnesses AGG used ([cd+1] rounds). *)

type node

val duration : Params.t -> int
(** Rounds in one execution: [5cd + 3]. *)

val create : Params.t -> me:int -> from_agg:Agg.node -> node
(** Fresh VERI state seeded with the tree information (parent, children,
    level, ancestors, max level, critical failures) of the given completed
    AGG instance at the same node. *)

val step : node -> rr:int -> inbox:(int * Message.body) list -> Message.body list

val root_verdict : node -> bool
(** The root's output; meaningful once [rr = duration] has executed. *)

val overflowed : node -> bool
