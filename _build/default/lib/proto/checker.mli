(** Ground-truth oracles for result correctness and the paper's structural
    predicates (LFC existence, critical failures).

    The checker sees everything the protocols must not: the topology, the
    full failure schedule and every node's final state.  Tests and benches
    use it to verify the theorems' guarantees on concrete runs. *)

val correctness_sets :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  end_round:int ->
  inputs:int array ->
  int list * int list
(** [(base, optional)]: [base] holds the inputs of nodes that neither
    crashed by [end_round] nor were disconnected from the root in the
    surviving topology (the paper's [s1]); [optional] holds the other
    inputs ([s2 \ s1]). *)

val result_correct :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  end_round:int ->
  params:Params.t ->
  int ->
  bool
(** Whether a reported aggregate lies in the correctness interval given
    the run's failure schedule and termination round. *)

val model_edge_failures :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  round:int ->
  int
(** Edges incident to a node that is {e failed in the model's sense} by
    [round] — crashed, or disconnected from the root (§2 counts
    disconnected nodes as failed, so their edges count toward [f]). *)

(** {2 Structural predicates over a finished AGG execution} *)

type agg_trace = {
  agg_nodes : Agg.node array;
  agg_start : int;  (** global round of the execution's first round *)
  failures : Ftagg_sim.Failure.t;
  params : Params.t;
  graph : Ftagg_graph.Graph.t;
}

val critical_failures : agg_trace -> int list
(** Nodes that failed after acking and before their aggregation action
    (§4.1) — computed from the schedule, not from protocol messages. *)

val included_inputs : agg_trace -> source:int -> int list
(** The nodes whose inputs the given node's partial sum aggregated,
    recomputed {e from the crash schedule alone}: a child's subtree is
    included iff the child was still alive at its own aggregation action
    round.  Cross-checks the protocol's arithmetic (the partial sum must
    equal the fold of these inputs). *)

type representative_report = {
  disjoint : bool;  (** no input counted twice across selected sums *)
  covers_alive : bool;  (** every alive-and-connected node's input included *)
  psums_match : bool;  (** each selected partial sum = fold of its set *)
}

val representative_set : agg_trace -> selected:int list -> end_round:int -> representative_report
(** Validate §4.3's claim on a finished run: the partial sums the root
    selected form a representative set — pairwise disjoint coverage that
    includes every node still alive (and connected) at [end_round]. *)

val has_lfc : agg_trace -> veri_end:int -> bool
(** Whether a long failure chain (§5) exists: [t] tree-consecutive nodes
    in one fragment, all crashed by the end of AGG, whose tail has a
    local descendant alive at global round [veri_end].  Fragments are cut
    at the {e root-visible} critical failures, exactly as the paper
    defines them. *)
