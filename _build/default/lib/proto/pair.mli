(** One AGG execution immediately followed by one VERI execution — the
    unit Algorithm 1 schedules inside each selected interval.

    Duration is [12cd + 7] rounds, within the [19·cd] rounds of an
    interval ([19c] flooding rounds, Theorems 3 and 6). *)

type node

type verdict = {
  result : Agg.result;
  veri_ok : bool;
}
(** Algorithm 1 accepts iff [result = Value _ && veri_ok]. *)

val duration : Params.t -> int

val create : ?ablation:Agg.ablation -> Params.t -> me:int -> node

val step : node -> rr:int -> inbox:(int * Message.body) list -> Message.body list

val root_verdict : node -> verdict
(** Meaningful once [rr = duration] has executed at the root. *)

val agg : node -> Agg.node
val veri : node -> Veri.node option
(** [None] until the VERI half starts. *)
