type body =
  | Tree_construct of { level : int; ancestors : int list }
  | Ack of { parent : int }
  | Aggregation of { psum : int; max_level : int }
  | Critical_failure of int
  | Flooded_psum of { source : int; psum : int }
  | Dominated of int
  | Compulsory of int
  | Agg_abort
  | Detect_failed_parent
  | Failed_parent of { node : int; depth : int }
  | Detect_failed_child
  | Failed_child of int
  | Lfc_tail of int
  | Not_lfc_tail of int
  | Veri_overflow
  | Bf_init
  | Bf_value of { source : int; value : int }

type t = { exec : int; body : body }

let tag_bits = 5

let bits p body =
  let id = Params.id_bits p in
  let level = Params.level_bits p in
  let value = Params.value_bits p in
  let input = max 1 (Ftagg_util.Bits.bits_for_value p.Params.max_input) in
  let fields =
    match body with
    | Tree_construct { level = _; ancestors } -> level + (List.length ancestors * id)
    | Ack _ -> id
    | Aggregation _ -> value + level
    | Critical_failure _ -> id
    | Flooded_psum _ -> id + value
    | Dominated _ | Compulsory _ -> id
    | Agg_abort | Veri_overflow | Detect_failed_parent | Detect_failed_child | Bf_init -> 0
    | Failed_parent _ -> id + level
    | Failed_child _ | Lfc_tail _ | Not_lfc_tail _ -> id
    | Bf_value _ -> id + input
  in
  tag_bits + id + fields

let msg_bits p { exec = _; body } = bits p body

let is_flood = function
  | Tree_construct _ | Ack _ | Aggregation _ -> false
  | Critical_failure _ | Flooded_psum _ | Dominated _ | Compulsory _ | Agg_abort
  | Detect_failed_parent | Failed_parent _ | Detect_failed_child | Failed_child _
  | Lfc_tail _ | Not_lfc_tail _ | Veri_overflow | Bf_init | Bf_value _ ->
    true

let pp_body ppf = function
  | Tree_construct { level; ancestors } ->
    Format.fprintf ppf "tc(l%d,%d anc)" level (List.length ancestors)
  | Ack { parent } -> Format.fprintf ppf "ack(%d)" parent
  | Aggregation { psum; max_level } -> Format.fprintf ppf "agg(%d,ml%d)" psum max_level
  | Critical_failure v -> Format.fprintf ppf "crit(%d)" v
  | Flooded_psum { source; psum } -> Format.fprintf ppf "psum(%d:%d)" source psum
  | Dominated v -> Format.fprintf ppf "dom(%d)" v
  | Compulsory v -> Format.fprintf ppf "comp(%d)" v
  | Agg_abort -> Format.fprintf ppf "abort"
  | Detect_failed_parent -> Format.fprintf ppf "dfp"
  | Failed_parent { node; depth } -> Format.fprintf ppf "fp(%d,x%d)" node depth
  | Detect_failed_child -> Format.fprintf ppf "dfc"
  | Failed_child v -> Format.fprintf ppf "fc(%d)" v
  | Lfc_tail v -> Format.fprintf ppf "lfc(%d)" v
  | Not_lfc_tail v -> Format.fprintf ppf "nolfc(%d)" v
  | Veri_overflow -> Format.fprintf ppf "overflow"
  | Bf_init -> Format.fprintf ppf "bf"
  | Bf_value { source; value } -> Format.fprintf ppf "bfv(%d:%d)" source value

let pp ppf { exec; body } = Format.fprintf ppf "%d:%a" exec pp_body body
