module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Failure = Ftagg_sim.Failure
module Graph = Ftagg_graph.Graph

type common = {
  metrics : Metrics.t;
  rounds : int;
  flooding_rounds : int;
  correct : bool;
}

let mk_common ~params ~metrics ~correct =
  let rounds = Metrics.rounds metrics in
  let d = params.Params.d in
  { metrics; rounds; flooding_rounds = (rounds + d - 1) / d; correct }

let check_value ~graph ~failures ~params ~metrics value =
  Checker.result_correct ~graph ~failures ~end_round:(Metrics.rounds metrics) ~params value

(* Wrap a body-level single-execution automaton as an engine protocol
   speaking exec-0-tagged messages. *)
let single_exec_protocol ~name ~create ~step ~is_done =
  {
    Engine.name;
    init = (fun u ~rng:_ -> create u);
    step =
      (fun ~round ~me:_ ~state ~inbox ->
        let inbox =
          List.filter_map
            (fun (s, m) -> if m.Message.exec = 0 then Some (s, m.Message.body) else None)
            inbox
        in
        let bodies = step state ~rr:round ~inbox in
        (state, List.map (fun body -> Message.{ exec = 0; body }) bodies));
    msg_bits = (fun _ -> 0);  (* replaced below; see [with_bits] *)
    root_done = is_done;
  }

let with_bits params proto = { proto with Engine.msg_bits = Message.msg_bits params }

type pair_outcome = {
  verdict : Pair.verdict;
  trace : Checker.agg_trace;
  veri_end : int;
  lfc : bool;
  edge_failures : int;
  pc : common;
}

let pair ?ablation ~graph ~failures ~params ~seed () =
  let duration = Pair.duration params in
  let proto =
    single_exec_protocol ~name:"pair"
      ~create:(fun u -> Pair.create ?ablation params ~me:u)
      ~step:Pair.step
      ~is_done:(fun _ -> false)
    |> with_bits params
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:duration ~seed proto in
  let verdict = Pair.root_verdict states.(Graph.root) in
  let trace =
    {
      Checker.agg_nodes = Array.map Pair.agg states;
      agg_start = 1;
      failures;
      params;
      graph;
    }
  in
  let veri_end = duration in
  let lfc = Checker.has_lfc trace ~veri_end in
  let edge_failures = Checker.model_edge_failures ~graph ~failures ~round:duration in
  let correct =
    match verdict.Pair.result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  { verdict; trace; veri_end; lfc; edge_failures; pc = mk_common ~params ~metrics ~correct }

type agg_outcome = {
  agg_result : Agg.result;
  agg_trace : Checker.agg_trace;
  ac : common;
}

let agg ?ablation ~graph ~failures ~params ~seed () =
  let duration = Agg.duration params in
  let proto =
    single_exec_protocol ~name:"agg"
      ~create:(fun u -> Agg.create ?ablation params ~me:u)
      ~step:Agg.step
      ~is_done:(fun _ -> false)
    |> with_bits params
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:duration ~seed proto in
  let agg_result = Agg.root_result states.(Graph.root) in
  let agg_trace = { Checker.agg_nodes = states; agg_start = 1; failures; params; graph } in
  let correct =
    match agg_result with
    | Agg.Aborted -> true
    | Agg.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  { agg_result; agg_trace; ac = mk_common ~params ~metrics ~correct }

type value_outcome = {
  value : int;
  vc : common;
}

let brute_force ~graph ~failures ~params ~seed =
  let duration = Brute_force.duration params in
  let proto =
    single_exec_protocol ~name:"brute_force"
      ~create:(fun u -> Brute_force.create params ~me:u)
      ~step:Brute_force.step
      ~is_done:(fun _ -> false)
    |> with_bits params
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:duration ~seed proto in
  let value = Brute_force.root_result states.(Graph.root) in
  let correct = check_value ~graph ~failures ~params ~metrics value in
  { value; vc = mk_common ~params ~metrics ~correct }

type folklore_outcome = {
  f_result : Folklore.result;
  epochs : int;
  fc : common;
}

let folklore ~graph ~failures ~params ~mode ~seed =
  let duration = Folklore.duration params mode in
  let proto =
    {
      Engine.name = "folklore";
      init = (fun u ~rng:_ -> Folklore.create params ~mode ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Folklore.step state ~rr:round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Folklore.root_done;
    }
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:duration ~seed proto in
  let root = states.(Graph.root) in
  let f_result = Folklore.root_result root in
  let correct =
    match f_result with
    | Folklore.No_clean_epoch -> true
    | Folklore.Value v -> check_value ~graph ~failures ~params ~metrics v
  in
  {
    f_result;
    epochs = Folklore.epochs_used root;
    fc = mk_common ~params ~metrics ~correct;
  }

type tradeoff_outcome = {
  t_value : int;
  how : Tradeoff.how;
  tc : common;
}

let tradeoff_with ~strategy ~graph ~failures ~params ~b ~f ~seed =
  let proto =
    {
      Engine.name = "tradeoff";
      init = (fun u ~rng -> Tradeoff.create ~strategy params ~b ~f ~me:u ~rng);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Tradeoff.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Tradeoff.root_done;
    }
  in
  let max_rounds = Tradeoff.max_rounds params ~b in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let t_value = Tradeoff.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics t_value in
  { t_value; how = Tradeoff.root_how root; tc = mk_common ~params ~metrics ~correct }

let tradeoff ~graph ~failures ~params ~b ~f ~seed =
  tradeoff_with ~strategy:Tradeoff.Sampled ~graph ~failures ~params ~b ~f ~seed

type unknown_f_outcome = {
  u_value : int;
  u_how : Unknown_f.how;
  uc : common;
}

let unknown_f ~graph ~failures ~params ~seed =
  let proto =
    {
      Engine.name = "unknown_f";
      init = (fun u ~rng:_ -> Unknown_f.create params ~me:u);
      step =
        (fun ~round ~me:_ ~state ~inbox ->
          let out = Unknown_f.step state ~round ~inbox in
          (state, out));
      msg_bits = Message.msg_bits params;
      root_done = Unknown_f.root_done;
    }
  in
  let max_rounds = Unknown_f.max_rounds params in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds ~seed proto in
  let root = states.(Graph.root) in
  let u_value = Unknown_f.root_result root in
  let correct = check_value ~graph ~failures ~params ~metrics u_value in
  { u_value; u_how = Unknown_f.root_how root; uc = mk_common ~params ~metrics ~correct }
