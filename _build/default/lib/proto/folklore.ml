module Caaf = Ftagg_caaf.Caaf

type mode = Naive | Retry of int

type result = Value of int | No_clean_epoch

(* Per-epoch tree state. *)
type epoch_state = {
  mutable activated : bool;
  mutable level : int;
  mutable parent : int;
  mutable children : int list;
  mutable tc_send_round : int;
  mutable psum : int;
  mutable clean : bool;  (* every child delivered on schedule *)
  child_psums : (int, int) Hashtbl.t;
}

type node = {
  p : Params.t;
  mode : mode;
  me : int;
  mutable epoch : int;  (* current epoch number, 1-based *)
  mutable es : epoch_state;
  mutable output : result option;
  mutable epochs_used : int;
}

let epoch_duration p = (3 * Params.cd p) + 2

let max_epochs mode = match mode with Naive -> 1 | Retry k -> max k 1

let duration p mode = epoch_duration p * max_epochs mode

let fresh_epoch_state p ~me =
  let is_root = me = Ftagg_graph.Graph.root in
  {
    activated = is_root;
    level = (if is_root then 0 else -1);
    parent = -1;
    children = [];
    tc_send_round = (if is_root then 1 else -1);
    psum = p.Params.inputs.(me);
    clean = true;
    child_psums = Hashtbl.create 4;
  }

let create p ~mode ~me =
  { p; mode; me; epoch = 1; es = fresh_epoch_state p ~me; output = None; epochs_used = 0 }

let root_done node = node.output <> None

let step node ~rr ~inbox =
  let p = node.p in
  let cd = Params.cd p in
  let is_root = node.me = Ftagg_graph.Graph.root in
  let dur = epoch_duration p in
  if node.output <> None then []
  else begin
    (* Roll to the epoch this round belongs to. *)
    let epoch_now = ((rr - 1) / dur) + 1 in
    if epoch_now > node.epoch then begin
      node.epoch <- epoch_now;
      node.es <- fresh_epoch_state p ~me:node.me
    end;
    let er = rr - ((node.epoch - 1) * dur) in
    let es = node.es in
    let inbox =
      List.filter_map
        (fun (sender, Message.{ exec; body }) ->
          if exec = node.epoch then Some (sender, body) else None)
        inbox
    in
    let out = ref [] in
    (* Intake. *)
    List.iter
      (fun (sender, body) ->
        match body with
        | Message.Ack { parent } when parent = node.me -> es.children <- sender :: es.children
        | Message.Aggregation { psum; max_level = _ } when List.mem sender es.children ->
          Hashtbl.replace es.child_psums sender psum
        | _ -> ())
      inbox;
    (* Activation. *)
    if (not es.activated) && er <= (2 * cd) + 1 then begin
      match
        List.find_opt (function _, Message.Tree_construct _ -> true | _ -> false) inbox
      with
      | Some (sender, Message.Tree_construct { level = sl; ancestors = _ })
        when sl + 1 <= cd ->
        es.activated <- true;
        es.level <- sl + 1;
        es.parent <- sender;
        es.tc_send_round <- er + 1;
        out := Message.Ack { parent = sender } :: !out
      | _ -> ()
    end;
    if es.activated then begin
      if er = es.tc_send_round then
        out := Message.Tree_construct { level = es.level; ancestors = [] } :: !out;
      (* Aggregation action in round cd − level + 1 of the second phase. *)
      let action = (2 * cd) + 1 + (cd - es.level + 1) in
      if er = action then begin
        let caaf = p.Params.caaf in
        List.iter
          (fun child ->
            match Hashtbl.find_opt es.child_psums child with
            | Some cpsum -> es.psum <- caaf.Caaf.combine es.psum cpsum
            | None -> es.clean <- false)
          es.children;
        (match node.mode with
        | Naive ->
          if not is_root then out := Message.Aggregation { psum = es.psum; max_level = 0 } :: !out
        | Retry _ ->
          (* Withhold on a dirty subtree so the failure cascades upward. *)
          if (not is_root) && es.clean then
            out := Message.Aggregation { psum = es.psum; max_level = 0 } :: !out)
      end;
      (* Epoch verdict at the root. *)
      if is_root && er = dur then begin
        node.epochs_used <- node.epoch;
        let accept = match node.mode with Naive -> true | Retry _ -> es.clean in
        if accept then node.output <- Some (Value es.psum)
        else if node.epoch >= max_epochs node.mode then node.output <- Some No_clean_epoch
      end
    end;
    List.map (fun body -> Message.{ exec = node.epoch; body }) !out
  end

let root_result node =
  match node.output with
  | Some r -> r
  | None -> invalid_arg "Folklore.root_result: execution not finished"

let epochs_used node = node.epochs_used
