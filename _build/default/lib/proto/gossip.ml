module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics

type outcome = {
  estimate : float;
  relative_error : float;
  cc : int;
  rounds : int;
}

let value_bits = 32

type state = {
  mutable s : float;
  mutable w : float;
  degree : int;  (* static degree; a real node learns it during discovery *)
}

type msg = Share of { s : float; w : float }

let run ~graph ~failures ~inputs ~rounds ~seed =
  let n = Graph.n graph in
  if Array.length inputs <> n then invalid_arg "Gossip.run: wrong inputs length";
  let proto =
    {
      Engine.name = "push-sum";
      init =
        (fun u ~rng:_ ->
          {
            s = float_of_int inputs.(u);
            w = (if u = Graph.root then 1.0 else 0.0);
            degree = Graph.degree graph u;
          });
      step =
        (fun ~round:_ ~me:_ ~state ~inbox ->
          List.iter
            (fun (_, Share { s; w }) ->
              state.s <- state.s +. s;
              state.w <- state.w +. w)
            inbox;
          (* Split the current mass over self + neighbours and broadcast
             one share; keep our own share. *)
          let parts = float_of_int (state.degree + 1) in
          let share_s = state.s /. parts and share_w = state.w /. parts in
          state.s <- share_s;
          state.w <- share_w;
          (state, [ Share { s = share_s; w = share_w } ]));
      msg_bits = (fun (Share _) -> 5 + (2 * value_bits));
      root_done = (fun _ -> false);
    }
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:rounds ~seed proto in
  let root = states.(Graph.root) in
  let estimate = if root.w > 0.0 then root.s /. root.w else Float.nan in
  let truth = float_of_int (Array.fold_left ( + ) 0 inputs) in
  let relative_error =
    if truth = 0.0 then Float.abs estimate else Float.abs (estimate -. truth) /. truth
  in
  { estimate; relative_error; cc = Metrics.cc metrics; rounds = Metrics.rounds metrics }
