(** The brute-force SUM baseline (§1): the root floods a start bit and
    every node floods its id together with its input; the root adds up the
    distinct contributions it hears.

    Tolerates any number of failures with TC [2cd + 1] rounds (≤ [2c]
    flooding rounds, counting the root's output round) and CC
    [O(N·log N)] — every node may forward all [N] value floods.  It is
    both a standalone baseline (the [b = O(1)] point of Figure 1) and the
    fallback of Algorithm 1's last [2c] flooding rounds. *)

type node

val duration : Params.t -> int
(** [2cd + 1]. *)

val create : Params.t -> me:int -> node

val step : node -> rr:int -> inbox:(int * Message.body) list -> Message.body list

val root_result : node -> int
(** Aggregate of the root's own input and every distinct flooded value
    received; meaningful once [rr = duration] has executed. *)
