(** Algorithm 1 — the near-optimal communication-time tradeoff protocol
    (Theorem 1).

    Given a TC budget of [b] flooding rounds ([b >= 21c]) and a failure
    budget [f], the first [b − 2c] flooding rounds are divided into
    [x = ⌊(b−2c)/19c⌋] intervals of [19c] flooding rounds.  The root
    privately samples [log N] intervals (with replacement); in each
    selected interval it runs one AGG+VERI pair with [t = ⌊2f/x⌋] and
    terminates with AGG's result as soon as a pair ends with no abort and
    a [true] verdict.  If every sampled interval fails (probability
    [≤ 1/N]), the last [2c] flooding rounds run the brute-force protocol.

    Expected CC: [O((f/b·logN + logN) · min(b, f, logN))]
    [= O(f/b·log²N + log²N)]; TC ≤ [b·d] rounds; the output is always a
    correct aggregate. *)

type node

type how =
  | Via_pair of int  (** accepted in the interval with this index *)
  | Via_brute_force

type strategy =
  | Sampled  (** the paper's Algorithm 1: log N random intervals *)
  | Sequential
      (** derandomized ablation: scan intervals 1, 2, 3, … until one
          succeeds.  Still always correct, but the adversary can dirty
          up to ~x/2 consecutive intervals with its budget, driving CC
          back up to O(f·log N) — the experiment that shows what the
          private-coin sampling buys (bench E15). *)

val create :
  ?strategy:strategy ->
  Params.t ->
  b:int ->
  f:int ->
  me:int ->
  rng:Ftagg_util.Prng.t ->
  node
(** [b] in flooding rounds; raises [Invalid_argument] if [b < 21c].  The
    [t] field of the given params is ignored (the protocol derives its
    own [⌊2f/x⌋]).  [rng] supplies the root's private coins for interval
    selection (unused under [Sequential]); other nodes never draw from
    it.  Default strategy: [Sampled]. *)

val max_rounds : Params.t -> b:int -> int
(** [b·d] — pass to the engine. *)

val intervals : Params.t -> b:int -> int
(** [x = ⌊(b−2c)/19c⌋]. *)

val pair_t : Params.t -> b:int -> f:int -> int
(** [⌊2f/x⌋] — the per-interval tolerance. *)

val step : node -> round:int -> inbox:(int * Message.t) list -> Message.t list
(** [round] is the global round (the root initiates at round 1). *)

val root_done : node -> bool
val root_result : node -> int
val root_how : node -> how
val selected_intervals : node -> int list
(** Root only: the sampled distinct interval indices, ascending. *)
