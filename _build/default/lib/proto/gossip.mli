(** Broadcast push-sum gossip — the approximate-aggregation baseline the
    paper's related work contrasts against (Kempe, Dobra & Gehrke [8]).

    Each node holds a mass pair [(s, w)], initialised to [(input, 0)]
    ([w = 1] at the root).  Every round a node splits its mass evenly
    over itself and its neighbours and broadcasts the share; receivers
    accumulate.  Mass conservation gives [Σs = ΣInputs] and [Σw = 1]
    forever on a failure-free run, and every local ratio [s/w] converges
    to the true SUM.  The root reads off [s/w] after the round budget.

    Under crashes the mass held by (or in flight to) a dead node is
    destroyed, so the estimate degrades gracefully instead of staying in
    the correctness interval — exactly the zero-error-vs-approximate gap
    the paper's problem statement draws (§1).  The benchmark harness
    quantifies it (experiment E12).

    Message accounting: a share carries two fixed-point values quantised
    to {!value_bits} bits each (plus tag and sender id), mirroring how a
    real implementation would ship them. *)

type outcome = {
  estimate : float;  (** the root's [s/w] (NaN if the root's [w] is 0) *)
  relative_error : float;  (** |estimate − true sum| / true sum *)
  cc : int;  (** max bits broadcast by a single node *)
  rounds : int;
}

val value_bits : int
(** Fixed-point width per transmitted mass value (32). *)

val run :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  inputs:int array ->
  rounds:int ->
  seed:int ->
  outcome
(** Run broadcast push-sum for the given number of rounds. *)
