(** The partition (cut) simulation argument, made executable.

    Communication lower bounds for network protocols (including the
    paper's §7 reduction) rest on a folklore simulation: split the nodes
    into an Alice side (containing the root) and a Bob side; Alice and
    Bob can jointly replay any protocol by exchanging only the broadcasts
    of {e boundary} nodes (those with a neighbour across the cut), since
    everything else is locally computable from their own sides' inputs
    and coins.  Hence any two-party problem embeddable in the inputs is
    solvable with

      [transcript bits <= Σ_{boundary nodes} bits broadcast].

    This module measures that transcript for a concrete run: it replays
    the protocol through the engine and meters exactly the messages a
    two-party simulation would have to exchange.  The benchmark harness
    (E13) uses it to show how narrow cuts squeeze the transcript — the
    structural fact the paper's lower-bound topologies exploit. *)

type cut = {
  alice : bool array;  (** membership: [true] = Alice's side (owns the root) *)
  boundary_alice : int list;  (** Alice-side nodes with a cross edge *)
  boundary_bob : int list;
  cut_edges : int;
}

val partition : Ftagg_graph.Graph.t -> alice:(int -> bool) -> cut
(** Build the cut structure.  Raises [Invalid_argument] if the root is
    not on Alice's side. *)

val halves : Ftagg_graph.Graph.t -> cut
(** The id-split cut: nodes [< n/2] are Alice's. *)

type transcript = {
  alice_to_bob_bits : int;  (** bits broadcast by Alice's boundary nodes *)
  bob_to_alice_bits : int;
  total_bits : int;
  protocol_cc : int;  (** the run's ordinary CC, for comparison *)
}

val sum_transcript :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  cut:cut ->
  transcript
(** Replay Algorithm 1 and meter the two-party transcript across the
    cut. *)
