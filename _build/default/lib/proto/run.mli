(** End-to-end runners: instantiate a protocol on a topology, drive it
    through the engine under a failure schedule, and package the outcome
    together with metrics and ground-truth checks. *)

module Metrics = Ftagg_sim.Metrics

type common = {
  metrics : Metrics.t;
  rounds : int;  (** rounds until the run halted *)
  flooding_rounds : int;  (** [ceil (rounds / d)] *)
  correct : bool;  (** result within the correctness interval (an abort /
                       no-clean-epoch outcome is reported as correct only
                       if the protocol is allowed to give up there) *)
}

(** {2 Single AGG / AGG+VERI executions} *)

type pair_outcome = {
  verdict : Pair.verdict;
  trace : Checker.agg_trace;  (** for structural ground truth *)
  veri_end : int;  (** global round of VERI's last round *)
  lfc : bool;  (** ground truth: did the run contain an LFC? *)
  edge_failures : int;
      (** ground truth: the model's edge-failure count at the end of the
          run — edges incident to crashed {e or disconnected} nodes (§2
          counts disconnection as failure) *)
  pc : common;
}

val pair :
  ?ablation:Agg.ablation ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  pair_outcome
(** One AGG+VERI pair starting at round 1.  [pc.correct] is [true] when
    AGG aborted (it gave up explicitly) or its value is in the
    correctness interval. *)

type agg_outcome = {
  agg_result : Agg.result;
  agg_trace : Checker.agg_trace;
  ac : common;
}

val agg :
  ?ablation:Agg.ablation ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unit ->
  agg_outcome

(** {2 Whole-protocol runs} *)

type value_outcome = {
  value : int;
  vc : common;
}

val brute_force :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  value_outcome

type folklore_outcome = {
  f_result : Folklore.result;
  epochs : int;
  fc : common;
}

val folklore :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  mode:Folklore.mode ->
  seed:int ->
  folklore_outcome
(** [fc.correct] for [Naive] mode reports the actual interval check — the
    motivating baseline is {e expected} to fail it under failures. *)

type tradeoff_outcome = {
  t_value : int;
  how : Tradeoff.how;
  tc : common;
}

val tradeoff :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  tradeoff_outcome
(** Algorithm 1 with the paper's sampled-interval strategy. *)

val tradeoff_with :
  strategy:Tradeoff.strategy ->
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  tradeoff_outcome
(** Same, with an explicit interval-selection strategy (the [Sequential]
    derandomized ablation of bench E15). *)

type unknown_f_outcome = {
  u_value : int;
  u_how : Unknown_f.how;
  uc : common;
}

val unknown_f :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Params.t ->
  seed:int ->
  unknown_f_outcome
