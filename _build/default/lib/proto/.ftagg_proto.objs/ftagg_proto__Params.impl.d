lib/proto/params.ml: Array Ftagg_caaf Ftagg_graph Ftagg_util
