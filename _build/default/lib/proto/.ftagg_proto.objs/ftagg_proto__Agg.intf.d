lib/proto/agg.mli: Message Params
