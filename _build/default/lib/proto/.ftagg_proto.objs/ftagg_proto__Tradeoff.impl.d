lib/proto/tradeoff.ml: Agg Brute_force Ftagg_graph Ftagg_util Int List Message Pair Params Set
