lib/proto/cut_sim.ml: Array Ftagg_graph Ftagg_sim List Message Tradeoff
