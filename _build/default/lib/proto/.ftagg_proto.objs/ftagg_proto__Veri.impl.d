lib/proto/veri.ml: Agg Array Flood Ftagg_graph Hashtbl List Message Option Params
