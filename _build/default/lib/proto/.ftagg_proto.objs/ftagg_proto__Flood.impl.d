lib/proto/flood.ml: Hashtbl List
