lib/proto/veri.mli: Agg Message Params
