lib/proto/checker.mli: Agg Ftagg_graph Ftagg_sim Params
