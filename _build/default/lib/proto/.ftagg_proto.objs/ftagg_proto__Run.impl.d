lib/proto/run.ml: Agg Array Brute_force Checker Folklore Ftagg_graph Ftagg_sim List Message Pair Params Tradeoff Unknown_f
