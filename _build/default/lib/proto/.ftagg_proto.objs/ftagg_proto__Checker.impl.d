lib/proto/checker.ml: Agg Array Ftagg_caaf Ftagg_graph Ftagg_sim Hashtbl List Params
