lib/proto/folklore.ml: Array Ftagg_caaf Ftagg_graph Hashtbl List Message Params
