lib/proto/flood.mli:
