lib/proto/gossip.ml: Array Float Ftagg_graph Ftagg_sim List
