lib/proto/unknown_f.ml: Agg Brute_force Ftagg_graph Ftagg_util List Message Pair Params
