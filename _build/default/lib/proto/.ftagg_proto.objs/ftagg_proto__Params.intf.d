lib/proto/params.mli: Ftagg_caaf Ftagg_graph Ftagg_util
