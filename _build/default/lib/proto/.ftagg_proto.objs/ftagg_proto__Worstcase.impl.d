lib/proto/worstcase.ml: Array Ftagg_graph Ftagg_sim Ftagg_util List Params Printf Run Tradeoff
