lib/proto/synopsis.ml: Array Float Ftagg_graph Ftagg_sim Ftagg_util List
