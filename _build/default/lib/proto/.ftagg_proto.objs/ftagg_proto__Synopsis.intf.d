lib/proto/synopsis.mli: Ftagg_graph Ftagg_sim
