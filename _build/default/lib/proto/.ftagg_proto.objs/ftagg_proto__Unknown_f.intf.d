lib/proto/unknown_f.mli: Message Params
