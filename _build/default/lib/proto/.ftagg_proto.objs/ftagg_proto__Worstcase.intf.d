lib/proto/worstcase.mli:
