lib/proto/brute_force.ml: Array Flood Ftagg_caaf Ftagg_graph Hashtbl List Message Params
