lib/proto/pair.ml: Agg List Message Params Veri
