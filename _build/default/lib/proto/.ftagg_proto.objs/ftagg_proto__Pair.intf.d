lib/proto/pair.mli: Agg Message Params Veri
