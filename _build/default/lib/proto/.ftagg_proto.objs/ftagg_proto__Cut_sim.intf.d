lib/proto/cut_sim.mli: Ftagg_graph Ftagg_sim Params
