lib/proto/message.mli: Format Params
