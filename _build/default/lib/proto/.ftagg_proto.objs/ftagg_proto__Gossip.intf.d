lib/proto/gossip.mli: Ftagg_graph Ftagg_sim
