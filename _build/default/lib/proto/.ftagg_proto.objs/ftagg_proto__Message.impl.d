lib/proto/message.ml: Format Ftagg_util List Params
