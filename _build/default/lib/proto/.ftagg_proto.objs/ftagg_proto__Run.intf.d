lib/proto/run.mli: Agg Checker Folklore Ftagg_graph Ftagg_sim Pair Params Tradeoff Unknown_f
