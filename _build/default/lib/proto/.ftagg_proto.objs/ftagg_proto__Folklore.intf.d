lib/proto/folklore.mli: Message Params
