lib/proto/brute_force.mli: Message Params
