lib/proto/tradeoff.mli: Ftagg_util Message Params
