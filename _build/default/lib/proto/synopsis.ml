module Graph = Ftagg_graph.Graph
module Engine = Ftagg_sim.Engine
module Metrics = Ftagg_sim.Metrics
module Prng = Ftagg_util.Prng

type outcome = {
  estimate : float;
  relative_error : float;
  cc : int;
  rounds : int;
}

let bitmap_bits = 32
let phi = 0.77351  (* Flajolet–Martin's magic constant *)

(* One synopsis = k bitmaps packed as ints. *)
type synopsis = int array

type msg = Synopsis of synopsis

(* Deterministic per-element hashing: a fresh splitmix stream seeded by
   (bitmap index, element) yields the geometric bit position. *)
let insert syn ~element =
  Array.iteri
    (fun j bitmap ->
      let h = Prng.create ((element * 1_000_003) + j) in
      (* geometric(1/2): position of the first heads in a fair-coin run *)
      let rec first_heads p =
        if p >= bitmap_bits - 1 || Prng.bool h then p else first_heads (p + 1)
      in
      syn.(j) <- bitmap lor (1 lsl first_heads 0))
    syn

let merge a b = Array.mapi (fun j x -> x lor b.(j)) a

let lowest_zero bitmap =
  let rec go i = if i >= bitmap_bits then bitmap_bits else if bitmap land (1 lsl i) = 0 then i else go (i + 1) in
  go 0

let estimate_of syn =
  let k = Array.length syn in
  let mean_z =
    float_of_int (Array.fold_left (fun acc b -> acc + lowest_zero b) 0 syn)
    /. float_of_int k
  in
  (2.0 ** mean_z) /. phi

type state = { mutable syn : synopsis }

let run_generic ~graph ~failures ~k ~rounds ~seed ~contribution ~truth =
  if k < 1 then invalid_arg "Synopsis: need k >= 1";
  let proto =
    {
      Engine.name = "synopsis-diffusion";
      init =
        (fun u ~rng:_ ->
          let syn = Array.make k 0 in
          List.iter (fun e -> insert syn ~element:e) (contribution u);
          { syn });
      step =
        (fun ~round:_ ~me:_ ~state ~inbox ->
          List.iter (fun (_, Synopsis s) -> state.syn <- merge state.syn s) inbox;
          (state, [ Synopsis state.syn ]));
      msg_bits = (fun (Synopsis _) -> 5 + (k * bitmap_bits));
      root_done = (fun _ -> false);
    }
  in
  let states, metrics = Engine.run ~graph ~failures ~max_rounds:rounds ~seed proto in
  let estimate = estimate_of states.(Graph.root).syn in
  let relative_error =
    if truth = 0.0 then Float.abs estimate else Float.abs (estimate -. truth) /. truth
  in
  { estimate; relative_error; cc = Metrics.cc metrics; rounds = Metrics.rounds metrics }

let run_count ~graph ~failures ~k ~rounds ~seed =
  let n = Graph.n graph in
  run_generic ~graph ~failures ~k ~rounds ~seed
    ~contribution:(fun u -> [ u + 1 ])
    ~truth:(float_of_int n)

let run_sum ~graph ~failures ~inputs ~k ~rounds ~seed =
  let n = Graph.n graph in
  if Array.length inputs <> n then invalid_arg "Synopsis.run_sum: wrong inputs length";
  run_generic ~graph ~failures ~k ~rounds ~seed
    ~contribution:(fun u -> List.init inputs.(u) (fun j -> (u * 100_000) + j + 1))
    ~truth:(float_of_int (Array.fold_left ( + ) 0 inputs))
