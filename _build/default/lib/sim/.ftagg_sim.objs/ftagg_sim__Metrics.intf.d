lib/sim/metrics.mli:
