lib/sim/engine.ml: Array Failure Ftagg_graph Ftagg_util List Metrics
