lib/sim/failure.mli: Format Ftagg_graph Ftagg_util
