lib/sim/failure.ml: Array Format Ftagg_graph Ftagg_util Hashtbl List
