lib/sim/metrics.ml: Array
