lib/sim/engine.mli: Failure Ftagg_graph Ftagg_util Metrics
