type t = {
  bits : int array;
  msgs : int array;
  mutable last_round : int;
}

let create n = { bits = Array.make n 0; msgs = Array.make n 0; last_round = 0 }

let charge t ~node ~bits =
  if bits < 0 then invalid_arg "Metrics.charge: negative bits";
  t.bits.(node) <- t.bits.(node) + bits;
  if bits > 0 then t.msgs.(node) <- t.msgs.(node) + 1

let note_round t r = if r > t.last_round then t.last_round <- r

let bits_sent t u = t.bits.(u)
let msgs_sent t u = t.msgs.(u)
let cc t = Array.fold_left max 0 t.bits
let total_bits t = Array.fold_left ( + ) 0 t.bits
let rounds t = t.last_round

let merge_into acc m =
  if Array.length acc.bits <> Array.length m.bits then
    invalid_arg "Metrics.merge_into: size mismatch";
  Array.iteri (fun i b -> acc.bits.(i) <- acc.bits.(i) + b) m.bits;
  Array.iteri (fun i c -> acc.msgs.(i) <- acc.msgs.(i) + c) m.msgs;
  acc.last_round <- acc.last_round + m.last_round
