(** Per-run communication/time accounting.

    The paper's CC is the number of bits the *bottleneck* node sends over
    the whole execution; TC is the number of rounds (reported in flooding
    rounds of [d] rounds each by callers). *)

type t

val create : int -> t
(** [create n] for a system of [n] nodes. *)

val charge : t -> node:int -> bits:int -> unit
(** Record a local broadcast of [bits] bits by [node]. *)

val note_round : t -> int -> unit
(** Record that the given round executed (rounds are 1-based). *)

val bits_sent : t -> int -> int
(** Total bits broadcast by a node. *)

val msgs_sent : t -> int -> int
(** Number of (non-empty) broadcasts by a node. *)

val cc : t -> int
(** Max bits over all nodes — the paper's communication complexity. *)

val total_bits : t -> int
val rounds : t -> int
(** Number of rounds executed before the run halted. *)

val merge_into : t -> t -> unit
(** [merge_into acc m] adds [m]'s bit/message counts and round count into
    [acc] — sequential composition of executions.  Used to account
    repeated sub-protocol runs (e.g. the COUNT runs of SELECTION) as one
    execution. *)
