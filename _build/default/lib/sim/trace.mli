(** Execution traces: a recorder that plugs into {!Engine.run}'s
    [observer] hook and collects every broadcast for post-mortem
    inspection or debugging.

    Recording is protocol-agnostic: the caller supplies a printer for its
    message type when rendering. *)

type 'msg event = {
  round : int;
  node : int;
  payloads : 'msg list;  (** the node's broadcast that round; [[]] = silent *)
}

type 'msg t

val create : ?keep_silent:bool -> unit -> 'msg t
(** A fresh recorder.  By default silent rounds (empty broadcasts) are
    dropped; [keep_silent:true] records them too. *)

val observer : 'msg t -> round:int -> node:int -> 'msg list -> unit
(** Pass as [Engine.run ~observer:(Trace.observer tr)]. *)

val events : 'msg t -> 'msg event list
(** All recorded events in chronological order. *)

val length : 'msg t -> int

val broadcasts_of : 'msg t -> node:int -> 'msg event list
(** Events of one node, chronological. *)

val rounds_active : 'msg t -> node:int -> int list
(** Rounds in which the node broadcast at least one payload. *)

val pp :
  pp_msg:(Format.formatter -> 'msg -> unit) ->
  Format.formatter ->
  'msg t ->
  unit
(** Render the whole trace, one line per event. *)
