module Graph = Ftagg_graph.Graph
module Prng = Ftagg_util.Prng

type node_id = int

type ('state, 'msg) protocol = {
  name : string;
  init : node_id -> rng:Prng.t -> 'state;
  step :
    round:int ->
    me:node_id ->
    state:'state ->
    inbox:(node_id * 'msg) list ->
    'state * 'msg list;
  msg_bits : 'msg -> int;
  root_done : 'state -> bool;
}

let run ?observer ?(loss = 0.0) ~graph ~failures ~max_rounds ~seed proto =
  if loss < 0.0 || loss >= 1.0 then invalid_arg "Engine.run: loss must be in [0, 1)";
  let n = Graph.n graph in
  let rng = Prng.create seed in
  let loss_rng = Prng.split rng in
  let delivered () = loss = 0.0 || Prng.float loss_rng 1.0 >= loss in
  let states = Array.init n (fun u -> proto.init u ~rng:(Prng.split rng)) in
  let metrics = Metrics.create n in
  (* [in_flight.(u)] holds what [u] broadcast in the previous round (its
     logical payloads), to be delivered to u's neighbours this round. *)
  let in_flight : 'msg list array = Array.make n [] in
  let next_flight : 'msg list array = Array.make n [] in
  let round = ref 1 in
  let halted = ref false in
  while (not !halted) && !round <= max_rounds do
    let r = !round in
    Metrics.note_round metrics r;
    for u = 0 to n - 1 do
      if Failure.is_alive failures ~node:u ~round:r then begin
        let inbox =
          List.concat_map
            (fun v ->
              if in_flight.(v) = [] then []
              else if delivered () then List.map (fun m -> (v, m)) in_flight.(v)
              else [])
            (Graph.neighbors graph u)
        in
        let state', out = proto.step ~round:r ~me:u ~state:states.(u) ~inbox in
        states.(u) <- state';
        next_flight.(u) <- out;
        (match observer with Some f -> f ~round:r ~node:u out | None -> ());
        let bits = List.fold_left (fun acc m -> acc + proto.msg_bits m) 0 out in
        Metrics.charge metrics ~node:u ~bits
      end
      else next_flight.(u) <- []
    done;
    Array.blit next_flight 0 in_flight 0 n;
    Array.fill next_flight 0 n [];
    if proto.root_done states.(Graph.root) then halted := true;
    incr round
  done;
  (states, metrics)
