type 'msg event = {
  round : int;
  node : int;
  payloads : 'msg list;
}

type 'msg t = {
  keep_silent : bool;
  mutable rev_events : 'msg event list;
  mutable count : int;
}

let create ?(keep_silent = false) () = { keep_silent; rev_events = []; count = 0 }

let observer t ~round ~node payloads =
  if t.keep_silent || payloads <> [] then begin
    t.rev_events <- { round; node; payloads } :: t.rev_events;
    t.count <- t.count + 1
  end

let events t = List.rev t.rev_events

let length t = t.count

let broadcasts_of t ~node = List.filter (fun e -> e.node = node) (events t)

let rounds_active t ~node =
  List.filter_map
    (fun e -> if e.node = node && e.payloads <> [] then Some e.round else None)
    (events t)

let pp ~pp_msg ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "r%04d n%03d:" e.round e.node;
      List.iter (fun m -> Format.fprintf ppf " %a" pp_msg m) e.payloads;
      Format.fprintf ppf "@,")
    (events t);
  Format.fprintf ppf "@]"
