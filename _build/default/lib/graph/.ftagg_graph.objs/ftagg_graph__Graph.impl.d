lib/graph/graph.ml: Array Buffer Format Int List Printf Set
