lib/graph/gen.mli: Graph
