lib/graph/path.ml: Array Graph List Queue
