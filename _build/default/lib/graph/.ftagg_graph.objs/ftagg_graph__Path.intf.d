lib/graph/path.mli: Graph
