lib/graph/gen.ml: Array Ftagg_util Graph List Printf
