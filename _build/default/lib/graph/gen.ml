type family =
  | Path
  | Ring
  | Grid
  | Star
  | Binary_tree
  | Complete
  | Random of float
  | Caterpillar
  | Lollipop
  | Torus
  | Random_regular of int

let check_n name n min_n =
  if n < min_n then invalid_arg (Printf.sprintf "Gen.%s: need n >= %d" name min_n)

let path n =
  check_n "path" n 2;
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  check_n "ring" n 3;
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let grid n =
  check_n "grid" n 2;
  (* Near-square: w columns, enough full/partial rows to reach n nodes.
     Node k sits at (row = k / w, col = k mod w); root 0 is the corner. *)
  let w = max 1 (int_of_float (sqrt (float_of_int n))) in
  let edges = ref [] in
  for k = 0 to n - 1 do
    let row = k / w and col = k mod w in
    if col + 1 < w && k + 1 < n then edges := (k, k + 1) :: !edges;
    if row >= 1 then edges := (k - w, k) :: !edges
  done;
  Graph.of_edges ~n !edges

let star n =
  check_n "star" n 2;
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let binary_tree n =
  check_n "binary_tree" n 2;
  Graph.of_edges ~n (List.init (n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1)))

let complete n =
  check_n "complete" n 2;
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let caterpillar n =
  check_n "caterpillar" n 2;
  (* Spine nodes 0 .. s-1, leaves s .. n-1; leaf j hangs off spine node
     (j - s) when that spine node exists. *)
  let s = (n + 1) / 2 in
  let spine = List.init (s - 1) (fun i -> (i, i + 1)) in
  let leaves = List.init (n - s) (fun j -> (j mod s, s + j)) in
  Graph.of_edges ~n (spine @ leaves)

let lollipop n =
  check_n "lollipop" n 4;
  let k = n / 2 in
  (* Path part: 0 .. n-k-1 (root at 0); clique part: n-k .. n-1, attached
     to the path's far end. *)
  let path_edges = List.init (n - k - 1) (fun i -> (i, i + 1)) in
  let attach = (n - k - 1, n - k) in
  let clique = ref [] in
  for u = n - k to n - 1 do
    for v = u + 1 to n - 1 do
      clique := (u, v) :: !clique
    done
  done;
  Graph.of_edges ~n ((attach :: path_edges) @ !clique)

let torus n =
  check_n "torus" n 9;
  (* Near-square w x h torus with a possibly short last row; wrap edges
     are added only across full rows/columns so the graph stays simple. *)
  let w = max 3 (int_of_float (sqrt (float_of_int n))) in
  let h = (n + w - 1) / w in
  let id r c = (r * w) + c in
  let edges = ref [] in
  for k = 0 to n - 1 do
    let r = k / w and c = k mod w in
    let right = if c + 1 < w then id r ((c + 1) mod w) else id r 0 in
    if right < n && right <> k then edges := (k, right) :: !edges;
    if c = w - 1 && id r 0 < n then edges := (k, id r 0) :: !edges;
    let down = id ((r + 1) mod h) c in
    if r + 1 < h && down < n then edges := (k, down) :: !edges;
    if r = h - 1 && id 0 c < n && h > 2 then edges := (k, id 0 c) :: !edges
  done;
  Graph.of_edges ~n !edges

let hypercube dims =
  if dims < 1 || dims > 16 then invalid_arg "Gen.hypercube: need 1 <= dims <= 16";
  let n = 1 lsl dims in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to dims - 1 do
      let v = u lxor (1 lsl b) in
      if v > u then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let two_tier ~clusters ~cluster_size =
  if clusters < 1 || cluster_size < 1 then
    invalid_arg "Gen.two_tier: need clusters >= 1 and cluster_size >= 1";
  let n = 1 + (clusters * (1 + cluster_size)) in
  let head k = 1 + (k * (1 + cluster_size)) in
  let member k j = head k + 1 + j in
  let edges = ref [] in
  for k = 0 to clusters - 1 do
    edges := (Graph.root, head k) :: !edges;
    if k + 1 < clusters then edges := (head k, head (k + 1)) :: !edges;
    for j = 0 to cluster_size - 1 do
      edges := (head k, member k j) :: !edges;
      (* a member-level detour so a dead head does not orphan its whole
         cluster *)
      if j = 0 && k + 1 < clusters then edges := (member k 0, head (k + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_regular ~n ~degree ~seed =
  if degree < 3 then invalid_arg "Gen.random_regular: need degree >= 3";
  if n <= degree then invalid_arg "Gen.random_regular: need n > degree";
  let g = Ftagg_util.Prng.create seed in
  (* Pairing model: [degree] stubs per node, random perfect matching,
     simplified.  A ring is overlaid to guarantee connectivity. *)
  let stubs = Array.concat (List.init degree (fun _ -> Array.init n (fun i -> i))) in
  Ftagg_util.Prng.shuffle g stubs;
  let edges = ref [] in
  let m = Array.length stubs in
  let i = ref 0 in
  while !i + 1 < m do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v then edges := (min u v, max u v) :: !edges;
    i := !i + 2
  done;
  let ring_edges = (n - 1, 0) :: List.init (n - 1) (fun k -> (k, k + 1)) in
  Graph.of_edges ~n (ring_edges @ !edges)

let random_connected ~n ~p ~seed =
  check_n "random_connected" n 2;
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.random_connected: p out of [0,1]";
  let g = Ftagg_util.Prng.create seed in
  (* Random spanning tree (uniform attachment order) guarantees
     connectivity; ER edges are overlaid on top. *)
  let order = Array.init n (fun i -> i) in
  (* Keep the root first so it stays a "natural" position. *)
  let tail = Array.sub order 1 (n - 1) in
  Ftagg_util.Prng.shuffle g tail;
  Array.blit tail 0 order 1 (n - 1);
  let edges = ref [] in
  for i = 1 to n - 1 do
    let parent = order.(Ftagg_util.Prng.int g i) in
    edges := (parent, order.(i)) :: !edges
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Ftagg_util.Prng.float g 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let build family ~n ~seed =
  match family with
  | Path -> path n
  | Ring -> ring n
  | Grid -> grid n
  | Star -> star n
  | Binary_tree -> binary_tree n
  | Complete -> complete n
  | Random p -> random_connected ~n ~p ~seed
  | Caterpillar -> caterpillar n
  | Lollipop -> lollipop n
  | Torus -> torus n
  | Random_regular k -> random_regular ~n ~degree:k ~seed

let family_name = function
  | Path -> "path"
  | Ring -> "ring"
  | Grid -> "grid"
  | Star -> "star"
  | Binary_tree -> "binary_tree"
  | Complete -> "complete"
  | Random p -> Printf.sprintf "random(p=%.2f)" p
  | Caterpillar -> "caterpillar"
  | Lollipop -> "lollipop"
  | Torus -> "torus"
  | Random_regular k -> Printf.sprintf "random_regular(%d)" k

let all_families ~seed:_ =
  let fams =
    [
      Path; Ring; Grid; Star; Binary_tree; Complete; Random 0.05; Caterpillar;
      Lollipop; Torus; Random_regular 4;
    ]
  in
  List.map (fun f -> (family_name f, f)) fams
