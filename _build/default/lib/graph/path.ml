let bfs g src =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  if Graph.mem g src then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Graph.neighbors g u)
    done
  end;
  dist

let distance g u v =
  if not (Graph.mem g u && Graph.mem g v) then None
  else
    let d = (bfs g u).(v) in
    if d = max_int then None else Some d

let eccentricity g u =
  if not (Graph.mem g u) then None
  else
    let dist = bfs g u in
    let ecc =
      Graph.fold_nodes
        (fun v acc ->
          match acc with
          | None -> None
          | Some m -> if dist.(v) = max_int then None else Some (max m dist.(v)))
        g (Some 0)
    in
    ecc

let is_connected g =
  let some_node = Graph.fold_nodes (fun u acc -> match acc with None -> Some u | s -> s) g None in
  match some_node with
  | None -> true
  | Some src ->
    let dist = bfs g src in
    Graph.fold_nodes (fun v ok -> ok && dist.(v) <> max_int) g true

let diameter g =
  let diam =
    Graph.fold_nodes
      (fun u acc ->
        match acc, eccentricity g u with
        | None, _ | _, None -> None
        | Some m, Some e -> Some (max m e))
      g (Some 0)
  in
  diam

let component_of g src =
  if not (Graph.mem g src) then []
  else
    let dist = bfs g src in
    Graph.fold_nodes (fun v acc -> if dist.(v) <> max_int then v :: acc else acc) g []
    |> List.sort compare

let reachable_from_root g = component_of g Graph.root
