module IS = Set.Make (Int)

type t = {
  n : int;
  adj : IS.t array;  (* adjacency sets; removed nodes have no entry in [present] *)
  present : bool array;
}

let root = 0

let of_edges ~n edges =
  if n <= 0 then invalid_arg "Graph.of_edges: n must be positive";
  let adj = Array.make n IS.empty in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      adj.(u) <- IS.add v adj.(u);
      adj.(v) <- IS.add u adj.(v))
    edges;
  { n; adj; present = Array.make n true }

let n g = g.n

let mem g u = u >= 0 && u < g.n && g.present.(u)

let neighbors g u =
  if not (mem g u) then []
  else IS.elements (IS.filter (fun v -> g.present.(v)) g.adj.(u))

let degree g u = List.length (neighbors g u)

let has_edge g u v = mem g u && mem g v && IS.mem v g.adj.(u)

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    if g.present.(u) then
      IS.iter (fun v -> if v > u && g.present.(v) then acc := (u, v) :: !acc) g.adj.(u)
  done;
  !acc

let num_edges g = List.length (edges g)

let fold_nodes f g init =
  let acc = ref init in
  for u = 0 to g.n - 1 do
    if g.present.(u) then acc := f u !acc
  done;
  !acc

let remove_nodes g nodes =
  let present = Array.copy g.present in
  List.iter
    (fun u ->
      if u >= 0 && u < g.n then present.(u) <- false)
    nodes;
  { g with present }

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (num_edges g);
  List.iter (fun (u, v) -> Format.fprintf ppf "%d -- %d@," u v) (edges g);
  Format.fprintf ppf "@]"

let to_dot ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  0 [shape=doublecircle];\n";
  List.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v)) (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
