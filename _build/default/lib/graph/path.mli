(** Shortest paths, diameter and connectivity on {!Graph.t}. *)

val bfs : Graph.t -> int -> int array
(** [bfs g src] is the array of hop distances from [src]; unreachable or
    removed nodes get [max_int]. *)

val distance : Graph.t -> int -> int -> int option
(** Hop distance, or [None] if disconnected. *)

val eccentricity : Graph.t -> int -> int option
(** Max finite distance from a node to any present node, or [None] if the
    node cannot reach every present node. *)

val diameter : Graph.t -> int option
(** Exact diameter (max pairwise distance) of the subgraph induced by the
    present nodes; [None] if disconnected.  O(n·m) — fine at the scales we
    simulate. *)

val is_connected : Graph.t -> bool
(** Whether all present nodes are mutually reachable. *)

val component_of : Graph.t -> int -> int list
(** Sorted list of present nodes reachable from the given node
    (including itself).  Empty if the node is removed. *)

val reachable_from_root : Graph.t -> int list
(** [component_of g Graph.root]. *)
