(** Immutable undirected graphs over integer node ids [0 .. n-1].

    Node [0] is, by convention throughout the library, the aggregation
    root (the base station / gateway of the paper's motivating systems). *)

type t

val root : int
(** The distinguished root id (always [0]). *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes.  Self-loops are
    rejected; duplicate edges are collapsed.  Raises [Invalid_argument]
    on out-of-range endpoints. *)

val n : t -> int
(** Number of nodes. *)

val num_edges : t -> int

val neighbors : t -> int -> int list
(** Sorted adjacency list. *)

val degree : t -> int -> int

val has_edge : t -> int -> int -> bool

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v]. *)

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

val remove_nodes : t -> int list -> t
(** Graph with the given nodes (and their incident edges) deleted.  Ids
    are preserved; removed nodes become isolated and are excluded from
    [neighbors]/[edges].  Used to model crashed nodes. *)

val mem : t -> int -> bool
(** Whether the node is present (not removed). *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering of the present subgraph; the root is drawn as a
    double circle. *)
