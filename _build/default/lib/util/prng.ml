(* Splitmix64 (Steele, Lea & Flood 2014).  64-bit state, one add + three
   xor-shift-multiply rounds per output. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy g = { state = g.state }

let int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = { state = mix (int64 g) }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Draw 62 bits (the widest non-negative native int) and reject the tail
     to avoid modulo bias. *)
  let draw () = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  let limit = (max_int / bound) * bound in
  let rec go v = if v < limit then v mod bound else go (draw ()) in
  go (draw ())

let in_range g lo hi =
  if hi < lo then invalid_arg "Prng.in_range: hi < lo";
  lo + int g (hi - lo + 1)

let float g bound =
  let bits53 = Int64.to_int (Int64.shift_right_logical (int64 g) 11) in
  bound *. (float_of_int bits53 /. 9007199254740992.0)

let bool g = Int64.logand (int64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_without_replacement g k n =
  if k > n then invalid_arg "Prng.sample_without_replacement: k > n";
  (* Floyd's algorithm: k iterations, set-based. *)
  let module IS = Set.Make (Int) in
  let s = ref IS.empty in
  for j = n - k to n - 1 do
    let v = int g (j + 1) in
    if IS.mem v !s then s := IS.add j !s else s := IS.add v !s
  done;
  IS.elements !s
