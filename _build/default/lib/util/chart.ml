let render_bars ~width ~title ~transform series =
  let buf = Buffer.create 256 in
  (match title with Some t -> Buffer.add_string buf (t ^ "\n") | None -> ());
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let values = List.map (fun (_, v) -> transform (Float.max v 0.0)) series in
  let vmax = List.fold_left Float.max 0.0 values in
  List.iter2
    (fun (label, raw) v ->
      let filled =
        if vmax <= 0.0 then 0
        else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s%s %s\n" label_width label
           (String.concat "" (List.init filled (fun _ -> "\xe2\x96\x88")))
           (String.make (max 0 (width - filled)) ' ')
           (if Float.is_integer raw then Printf.sprintf "%.0f" raw
            else Printf.sprintf "%.2f" raw)))
    series values;
  Buffer.contents buf

let bars ?(width = 50) ?title series =
  render_bars ~width ~title ~transform:Fun.id series

let log_bars ?(width = 50) ?title series =
  render_bars ~width ~title
    ~transform:(fun v -> if v <= 1.0 then 0.0 else log v /. log 2.0)
    series

let spark values =
  match values with
  | [] -> ""
  | _ ->
    let glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
                    "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |] in
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let scale v =
      if hi <= lo then 0
      else min 7 (int_of_float ((v -. lo) /. (hi -. lo) *. 8.0))
    in
    String.concat "" (List.map (fun v -> glyphs.(scale v)) values)
