(** Aligned ASCII tables for the benchmark/experiment harness.

    The bench binary reproduces the paper's figures and tables as textual
    series; this module renders them readably and uniformly. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_int_row : t -> int list -> unit
val add_rule : t -> unit
(** Append a horizontal separator. *)

val render : t -> string
(** Render including header, rules and title. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val fmt_float : float -> string
(** Compact fixed-point rendering used across benches. *)
