(** Minimal ASCII charts for the benchmark harness: horizontal bar charts
    and sparklines, so tradeoff curves are visible at a glance in
    terminal output. *)

val bars :
  ?width:int ->
  ?title:string ->
  (string * float) list ->
  string
(** [bars series] renders one labelled horizontal bar per entry, scaled
    to the maximum value ([width] characters, default 50).  Negative
    values are clamped to 0. *)

val spark : float list -> string
(** A one-line sparkline using eight block glyphs; empty input gives
    the empty string. *)

val log_bars :
  ?width:int ->
  ?title:string ->
  (string * float) list ->
  string
(** Like {!bars} but on a log₂ scale — appropriate when the series spans
    orders of magnitude (e.g. brute force vs Algorithm 1 CC).  Values
    [<= 1] render as empty bars. *)
