let log2_floor k =
  if k < 1 then invalid_arg "Bits.log2_floor";
  let rec go acc k = if k <= 1 then acc else go (acc + 1) (k lsr 1) in
  go 0 k

let log2_ceil k =
  if k < 1 then invalid_arg "Bits.log2_ceil";
  let fl = log2_floor k in
  if 1 lsl fl = k then fl else fl + 1

let bits_for k =
  if k < 0 then invalid_arg "Bits.bits_for"
  else if k = 0 then 0
  else if k = 1 then 1
  else log2_ceil k

let bits_for_value v = bits_for (v + 1)

let pow2 k =
  if k < 0 || k >= 62 then invalid_arg "Bits.pow2";
  1 lsl k
