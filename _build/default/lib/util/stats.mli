(** Small descriptive-statistics helpers for the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p90 : float;  (** 90th percentile (nearest-rank) *)
}

val summarize : float list -> summary
(** Summary of a non-empty sample. *)

val summarize_ints : int list -> summary

val mean : float list -> float
val max_int_list : int list -> int
val percentile : float -> float list -> float
(** [percentile p xs] is the nearest-rank [p]-percentile ([0 <= p <= 100])
    of a non-empty sample. *)
