lib/util/bits.mli:
