lib/util/chart.ml: Array Buffer Float Fun List Printf String
