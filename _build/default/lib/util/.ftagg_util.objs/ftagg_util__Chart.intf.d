lib/util/chart.mli:
