lib/util/table.mli:
