lib/util/prng.mli:
