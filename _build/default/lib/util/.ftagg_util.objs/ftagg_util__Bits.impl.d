lib/util/bits.ml:
