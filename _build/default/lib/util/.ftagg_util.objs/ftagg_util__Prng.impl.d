lib/util/prng.ml: Array Int Int64 Set
