lib/util/stats.mli:
