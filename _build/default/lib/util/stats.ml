type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let n = List.length xs in
    let mu = mean xs in
    let var =
      if n < 2 then 0.0
      else
        List.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs
        /. float_of_int (n - 1)
    in
    {
      n;
      mean = mu;
      stddev = sqrt var;
      min = List.fold_left min infinity xs;
      max = List.fold_left max neg_infinity xs;
      median = percentile 50.0 xs;
      p90 = percentile 90.0 xs;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let max_int_list = function
  | [] -> invalid_arg "Stats.max_int_list: empty sample"
  | x :: xs -> List.fold_left max x xs
