(** Bit-width arithmetic for the paper's communication-cost accounting.

    The paper measures communication complexity in bits: node ids cost
    [ceil(log2 N)] bits, values cost the width of their domain, and so on.
    This module centralises those widths so every protocol charges the same
    costs the theorems do. *)

val bits_for : int -> int
(** [bits_for k] is the number of bits needed to represent [k] distinct
    values, i.e. [ceil(log2 k)], with [bits_for 0 = 0] and
    [bits_for 1 = 1] (one value still occupies a field). *)

val bits_for_value : int -> int
(** [bits_for_value v] is the width of the range [\[0, v\]], i.e.
    [bits_for (v + 1)]. *)

val log2_ceil : int -> int
(** [log2_ceil k] is [ceil(log2 k)] for [k >= 1]. *)

val log2_floor : int -> int
(** [log2_floor k] is [floor(log2 k)] for [k >= 1]. *)

val pow2 : int -> int
(** [pow2 k] is [2^k] for [0 <= k < 62]. *)
