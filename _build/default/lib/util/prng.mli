(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (topology generation, input
    assignment, failure schedules, protocol coin flips) draws from an
    explicit {!t} so that runs are pure functions of their seeds.  The
    generator is splitmix64: tiny state, high quality, and cheap {!split}
    for deriving independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy with identical state (same future outputs). *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s remaining stream.  Used to hand
    sub-seeds to components without coupling their draw counts. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement g k n] draws [k] distinct integers from
    [\[0, n)], in increasing order.  Requires [k <= n]. *)
