type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_int_row t cells = add_row t (List.map string_of_int cells)

let add_rule t = t.rows <- Rule :: t.rows

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.2f" x

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Rule -> w
            | Cells cells -> max w (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let pad align width s =
    let gap = width - String.length s in
    if gap <= 0 then s
    else
      match align with
      | Left -> s ^ String.make gap ' '
      | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        let a = List.nth t.aligns i and w = List.nth widths i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  rule ();
  line t.headers;
  rule ();
  List.iter (function Rule -> rule () | Cells cells -> line cells) rows;
  rule ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
