(** Commutative and associative aggregate functions (CAAFs, §2 of the
    paper).

    A CAAF is a commutative, associative binary operator whose partial
    aggregates over up to [N] inputs stay within a domain of size
    polynomial in [N] — so a partial aggregate always fits in
    [O(log N)] bits.  The aggregation protocols are generic over a value
    of this type; SUM is just one instance.

    {b Correctness.}  With [s1] the surviving inputs and [s2] all inputs,
    a result is correct iff it lies between the min and max of
    [fold ⋄ s] over all [s1 ⊆ s ⊆ s2].  For operators monotone under set
    inclusion those extremes are attained at [s1] and [s2] themselves;
    {!correct_interval} exploits this and falls back to exhaustive subset
    enumeration for non-monotone operators. *)

type monotonicity =
  | Increasing  (** aggregating more inputs never decreases the result (SUM of
                    non-negatives, MAX, COUNT, OR) *)
  | Decreasing  (** aggregating more inputs never increases the result (MIN,
                    AND, GCD) *)
  | Non_monotone  (** anything else (e.g. modular sum) *)

type t = {
  name : string;
  identity : int;  (** the aggregate of zero inputs *)
  combine : int -> int -> int;
  domain_bits : n:int -> max_input:int -> int;
      (** Width in bits of any partial aggregate of up to [n] inputs drawn
          from [\[0, max_input\]]. *)
  monotonicity : monotonicity;
}

val aggregate : t -> int list -> int
(** Fold the operator over a list (identity for the empty list). *)

val correct_interval : t -> base:int list -> optional:int list -> int * int
(** [correct_interval caaf ~base ~optional] is
    [(min, max)] of [aggregate (base ∪ s)] over all [s ⊆ optional].
    [base] = inputs of nodes that survived, [optional] = inputs of nodes
    that failed during the run.  Exhaustive enumeration is used for
    non-monotone operators and requires [List.length optional <= 20]. *)

val is_correct : t -> base:int list -> optional:int list -> int -> bool
(** Whether a reported result lies within {!correct_interval}. *)
