module Bits = Ftagg_util.Bits

let sum =
  {
    Caaf.name = "sum";
    identity = 0;
    combine = ( + );
    domain_bits = (fun ~n ~max_input -> Bits.bits_for_value (n * max_input));
    monotonicity = Increasing;
  }

let count =
  {
    Caaf.name = "count";
    identity = 0;
    combine = ( + );
    domain_bits = (fun ~n ~max_input:_ -> Bits.bits_for_value n);
    monotonicity = Increasing;
  }

let max_ =
  {
    Caaf.name = "max";
    identity = 0;
    combine = max;
    domain_bits = (fun ~n:_ ~max_input -> Bits.bits_for_value max_input);
    monotonicity = Increasing;
  }

(* MIN's identity (the aggregate of zero inputs) is +infinity; [max_int]
   stands in for it and is never encoded on the wire because every partial
   sum a protocol sends aggregates at least the sender's own input. *)
let min_ =
  {
    Caaf.name = "min";
    identity = max_int;
    combine = min;
    domain_bits = (fun ~n:_ ~max_input -> Bits.bits_for_value max_input);
    monotonicity = Decreasing;
  }

let bool_or =
  {
    Caaf.name = "or";
    identity = 0;
    combine = (fun a b -> if a + b > 0 then 1 else 0);
    domain_bits = (fun ~n:_ ~max_input:_ -> 1);
    monotonicity = Increasing;
  }

let bool_and =
  {
    Caaf.name = "and";
    identity = 1;
    combine = (fun a b -> if a = 1 && b = 1 then 1 else 0);
    domain_bits = (fun ~n:_ ~max_input:_ -> 1);
    monotonicity = Decreasing;
  }

let rec euclid a b = if b = 0 then a else euclid b (a mod b)

(* GCD only decreases under set growth while the running aggregate is
   non-zero; the identity 0 (top of the divisibility order, bottom
   numerically) breaks numeric monotonicity when all-zero input sets are
   possible, so the interval checker treats it as non-monotone. *)
let gcd =
  {
    Caaf.name = "gcd";
    identity = 0;
    combine = euclid;
    domain_bits = (fun ~n:_ ~max_input -> Bits.bits_for_value max_input);
    monotonicity = Non_monotone;
  }

let modsum m =
  if m < 2 then invalid_arg "Instances.modsum: modulus must be >= 2";
  {
    Caaf.name = Printf.sprintf "modsum(%d)" m;
    identity = 0;
    combine = (fun a b -> (a + b) mod m);
    domain_bits = (fun ~n:_ ~max_input:_ -> Bits.bits_for_value (m - 1));
    monotonicity = Non_monotone;
  }

let pack2 ~bits a b =
  if bits < 1 || bits > 30 then invalid_arg "Instances.pack2: need 1 <= bits <= 30";
  if a < 0 || a >= 1 lsl bits || b < 0 || b >= 1 lsl bits then
    invalid_arg "Instances.pack2: component out of range";
  a lor (b lsl bits)

let unpack2 ~bits v = (v land ((1 lsl bits) - 1), v lsr bits)

let packed2 ~bits (a : Caaf.t) (b : Caaf.t) =
  if bits < 1 || bits > 30 then invalid_arg "Instances.packed2: need 1 <= bits <= 30";
  let monotonicity =
    match (a.Caaf.monotonicity, b.Caaf.monotonicity) with
    | Caaf.Increasing, Caaf.Increasing -> Caaf.Increasing
    | Caaf.Decreasing, Caaf.Decreasing -> Caaf.Decreasing
    | _ -> Caaf.Non_monotone
  in
  {
    Caaf.name = Printf.sprintf "packed(%s,%s)" a.Caaf.name b.Caaf.name;
    identity = pack2 ~bits a.Caaf.identity b.Caaf.identity;
    combine =
      (fun x y ->
        let xa, xb = unpack2 ~bits x and ya, yb = unpack2 ~bits y in
        pack2 ~bits (a.Caaf.combine xa ya) (b.Caaf.combine xb yb));
    domain_bits = (fun ~n:_ ~max_input:_ -> 2 * bits);
    monotonicity;
  }

let all = [ sum; count; max_; min_; bool_or; bool_and; gcd; modsum 97 ]
