lib/caaf/instances.ml: Caaf Ftagg_util Printf
