lib/caaf/caaf.ml: Array List
