lib/caaf/caaf.mli:
