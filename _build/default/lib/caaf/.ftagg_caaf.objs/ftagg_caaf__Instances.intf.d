lib/caaf/instances.mli: Caaf
