(** Standard CAAF instances.

    All operate on non-negative integer inputs bounded by a polynomial of
    [N], as the paper's model requires. *)

val sum : Caaf.t
(** The paper's canonical function. *)

val count : Caaf.t
(** Counts participating inputs; every input is treated as contributing 1.
    Feed it all-ones inputs (or any inputs — they are ignored except for
    presence via {!Caaf.aggregate} over [1]s).  In network protocols use
    input 1 per node. *)

val max_ : Caaf.t
val min_ : Caaf.t
(** [min_]'s identity is a large sentinel ([max_input] must not exceed
    it); its domain is that of the inputs. *)

val bool_or : Caaf.t
val bool_and : Caaf.t
(** Inputs must be 0/1. *)

val gcd : Caaf.t
(** Greatest common divisor, with [gcd 0 x = x]. *)

val modsum : int -> Caaf.t
(** Sum modulo [m] — a valid CAAF (domain size [m]) that is {e not}
    monotone; exercises the exhaustive correctness interval. *)

val packed2 : bits:int -> Caaf.t -> Caaf.t -> Caaf.t
(** [packed2 ~bits a b] aggregates two CAAFs in one protocol execution by
    bit-packing both components into a single value: the low [bits] bits
    carry [a]'s aggregate, the next [bits] bits carry [b]'s.  Each
    component's inputs and partial aggregates must fit in [bits] bits
    ([1 <= bits <= 30]); combine unpacks, combines componentwise and
    repacks.  The pack of (SUM, COUNT) computes AVERAGE in a single run.
    Monotonicity is [Increasing] iff both components are, [Decreasing]
    iff both are, otherwise [Non_monotone].  Components whose identity
    does not fit in [bits] (e.g. {!min_}'s +∞ sentinel) are rejected at
    construction time. *)

val pack2 : bits:int -> int -> int -> int
(** Encode a component pair (checked to fit). *)

val unpack2 : bits:int -> int -> int * int
(** Decode a packed value into [(a, b)]. *)

val all : Caaf.t list
(** The instances above (with [modsum 97] for the modular one). *)
