type monotonicity = Increasing | Decreasing | Non_monotone

type t = {
  name : string;
  identity : int;
  combine : int -> int -> int;
  domain_bits : n:int -> max_input:int -> int;
  monotonicity : monotonicity;
}

let aggregate caaf xs = List.fold_left caaf.combine caaf.identity xs

let correct_interval caaf ~base ~optional =
  let agg = aggregate caaf in
  match caaf.monotonicity with
  | Increasing -> (agg base, agg (base @ optional))
  | Decreasing -> (agg (base @ optional), agg base)
  | Non_monotone ->
    let k = List.length optional in
    if k > 20 then
      invalid_arg "Caaf.correct_interval: too many optional inputs for a \
                   non-monotone operator";
    let opts = Array.of_list optional in
    let lo = ref max_int and hi = ref min_int in
    for mask = 0 to (1 lsl k) - 1 do
      let chosen = ref base in
      for i = 0 to k - 1 do
        if mask land (1 lsl i) <> 0 then chosen := opts.(i) :: !chosen
      done;
      let v = agg !chosen in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    (!lo, !hi)

let is_correct caaf ~base ~optional result =
  let lo, hi = correct_interval caaf ~base ~optional in
  lo <= result && result <= hi
