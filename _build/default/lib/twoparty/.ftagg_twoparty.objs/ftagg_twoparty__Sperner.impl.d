lib/twoparty/sperner.ml: Array Printf
