lib/twoparty/channel.mli:
