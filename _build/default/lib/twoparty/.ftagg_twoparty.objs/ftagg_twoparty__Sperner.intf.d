lib/twoparty/sperner.mli:
