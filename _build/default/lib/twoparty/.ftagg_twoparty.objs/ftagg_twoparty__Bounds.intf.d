lib/twoparty/bounds.mli:
