lib/twoparty/unionsize.mli: Channel Cycle_promise
