lib/twoparty/equality.ml: Array Channel Cycle_promise Ftagg_util Unionsize
