lib/twoparty/channel.ml: List Printf
