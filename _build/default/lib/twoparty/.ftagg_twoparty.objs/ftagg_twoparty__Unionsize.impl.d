lib/twoparty/unionsize.ml: Array Channel Cycle_promise Ftagg_util Hashtbl List
