lib/twoparty/equality.mli: Cycle_promise
