lib/twoparty/cycle_promise.ml: Array Ftagg_util
