lib/twoparty/cycle_promise.mli: Ftagg_util
