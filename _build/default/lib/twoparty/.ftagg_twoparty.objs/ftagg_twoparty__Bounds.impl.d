lib/twoparty/bounds.ml: Float
