(** A bit-metered two-party channel.

    §7's two-party problems are between Alice and Bob; their communication
    complexity is the total number of bits exchanged.  Protocols in this
    library move values through a {!t} and declare the width of each
    transmission; the channel keeps the ledger the theorems are checked
    against. *)

type party = Alice | Bob

type t

val create : unit -> t

val send : t -> from:party -> bits:int -> int -> int
(** [send ch ~from ~bits v] transmits [v] (which must fit in [bits] bits
    as a non-negative integer) and returns it, charging [bits] to the
    sender.  Raises [Invalid_argument] if the value does not fit. *)

val send_list : t -> from:party -> bits_each:int -> int list -> int list
(** Transmit a list, charging [bits_each] per element plus a
    length prefix of [bits_each] bits. *)

val bits_of : t -> party -> int
val total_bits : t -> int
