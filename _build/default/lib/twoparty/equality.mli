(** EQUALITYCP(n, q): decide whether [X = Y] under the cycle promise —
    and the Theorem 8 reduction to UNIONSIZECP.

    The reduction: run the UNIONSIZECP oracle; Bob then sends [ΣY_i]
    ([⌈log n⌉ + ⌈log q⌉] bits) and [z], the number of zeros in [Y]
    ([⌈log n⌉] bits); Alice outputs [X = Y] iff [ΣX = ΣY] and the union
    size equals [n − z].  Total overhead beyond the oracle:
    [O(log q) + O(log n)]. *)

type outcome = {
  equal : bool;
  total_bits : int;
  oracle_bits : int;  (** bits spent inside the UNIONSIZECP call *)
  overhead_bits : int;  (** the reduction's own bits *)
}

val solve : Cycle_promise.t -> outcome

val solve_trivial : Cycle_promise.t -> outcome
(** The promise-free baseline: Alice ships her whole string
    ([n·⌈log q⌉] bits) and Bob answers.  Shows what Theorem 8's reduction
    saves when [q] is large. *)
