module Bits = Ftagg_util.Bits

type outcome = {
  equal : bool;
  total_bits : int;
  oracle_bits : int;
  overhead_bits : int;
}

let solve (inst : Cycle_promise.t) =
  let { Cycle_promise.n; q; x; y } = inst in
  let ch = Channel.create () in
  let union = Unionsize.solve_on ch inst in
  let oracle_bits = Channel.total_bits ch in
  let sum a = Array.fold_left ( + ) 0 a in
  (* Bob -> Alice: ΣY (log n + log q bits) and the zero count z (log n). *)
  let sum_bits = max 1 (Bits.bits_for_value (n * (q - 1))) in
  let cnt_bits = max 1 (Bits.bits_for_value n) in
  let sum_y = Channel.send ch ~from:Channel.Bob ~bits:sum_bits (sum y) in
  let z =
    Channel.send ch ~from:Channel.Bob ~bits:cnt_bits
      (Array.fold_left (fun acc c -> if c = 0 then acc + 1 else acc) 0 y)
  in
  let equal = sum x = sum_y && union = n - z in
  {
    equal;
    total_bits = Channel.total_bits ch;
    oracle_bits;
    overhead_bits = Channel.total_bits ch - oracle_bits;
  }

let solve_trivial (inst : Cycle_promise.t) =
  let { Cycle_promise.n = _; q; x; y } = inst in
  let ch = Channel.create () in
  let char_bits = max 1 (Bits.bits_for q) in
  let equal = ref true in
  Array.iteri
    (fun i xi ->
      let xi' = Channel.send ch ~from:Channel.Alice ~bits:char_bits xi in
      if xi' <> y.(i) then equal := false)
    x;
  let verdict = Channel.send ch ~from:Channel.Bob ~bits:1 (if !equal then 1 else 0) in
  {
    equal = verdict = 1;
    total_bits = Channel.total_bits ch;
    oracle_bits = 0;
    overhead_bits = Channel.total_bits ch;
  }
