module Bits = Ftagg_util.Bits

type outcome = {
  answer : int;
  alice_bits : int;
  bob_bits : int;
  total_bits : int;
}

let class_sets ~q s =
  let sets = Array.make q [] in
  Array.iteri (fun i c -> sets.(c) <- i :: sets.(c)) s;
  sets

let solve_on ch (inst : Cycle_promise.t) =
  let { Cycle_promise.n; q; x; y } = inst in
  let idx_bits = max 1 (Bits.bits_for n) in
  let cnt_bits = max 1 (Bits.bits_for_value n) in
  let class_bits = max 1 (Bits.bits_for q) in
  (* Alice's side. *)
  let a_sets = class_sets ~q x in
  let a_counts = Array.map List.length a_sets in
  let k_star = ref 0 in
  Array.iteri (fun k c -> if c < a_counts.(!k_star) then k_star := k) a_counts;
  let k_star = !k_star in
  (* Aggregate of |A_k| over the walk k = k*, k*+1, ..., q−1 (empty when
     k* = 0: u_0 is then computed directly from the set). *)
  let walk_sum = ref 0 in
  for k = k_star to q - 1 do
    walk_sum := !walk_sum + a_counts.(k)
  done;
  let k_star' = Channel.send ch ~from:Channel.Alice ~bits:class_bits k_star in
  let a_kstar = Channel.send_list ch ~from:Channel.Alice ~bits_each:idx_bits a_sets.(k_star) in
  let walk_sum' = Channel.send ch ~from:Channel.Alice ~bits:cnt_bits !walk_sum in
  (* Bob's side. *)
  let b_sets = class_sets ~q y in
  let b_counts = Array.map List.length b_sets in
  let u_kstar =
    let in_b = Hashtbl.create 16 in
    List.iter (fun i -> Hashtbl.replace in_b i ()) b_sets.(k_star');
    List.length (List.filter (Hashtbl.mem in_b) a_kstar)
  in
  (* Unroll u_{k+1} = |B_{k+1}| − |A_k| + u_k along the walk.  Bob only
     needs Σ|B_{k+1}| (his own counts) and Alice's aggregate Σ|A_k|. *)
  let b_walk_sum = ref 0 in
  for k = k_star' to q - 1 do
    b_walk_sum := !b_walk_sum + b_counts.((k + 1) mod q)
  done;
  let u_0 = u_kstar + !b_walk_sum - walk_sum' in
  let answer = n - u_0 in
  Channel.send ch ~from:Channel.Bob ~bits:cnt_bits answer

let solve inst =
  let ch = Channel.create () in
  let answer = solve_on ch inst in
  {
    answer;
    alice_bits = Channel.bits_of ch Channel.Alice;
    bob_bits = Channel.bits_of ch Channel.Bob;
    total_bits = Channel.total_bits ch;
  }
