module Prng = Ftagg_util.Prng

type t = {
  n : int;
  q : int;
  x : int array;
  y : int array;
}

let make ~n ~q ~x ~y =
  if n < 1 then invalid_arg "Cycle_promise.make: n must be >= 1";
  if q < 2 then invalid_arg "Cycle_promise.make: q must be >= 2";
  if Array.length x <> n || Array.length y <> n then
    invalid_arg "Cycle_promise.make: wrong string length";
  Array.iteri
    (fun i xi ->
      let yi = y.(i) in
      if xi < 0 || xi >= q || yi < 0 || yi >= q then
        invalid_arg "Cycle_promise.make: character out of range";
      if yi <> xi && yi <> (xi + 1) mod q then
        invalid_arg "Cycle_promise.make: cycle promise violated")
    x;
  { n; q; x; y }

let random ~rng ~n ~q ?(force_equal = false) () =
  let x = Array.init n (fun _ -> Prng.int rng q) in
  let y =
    Array.map (fun xi -> if force_equal || Prng.bool rng then xi else (xi + 1) mod q) x
  in
  make ~n ~q ~x ~y

let random_sparse ~rng ~n ~q ~zero_frac =
  let x =
    Array.init n (fun _ ->
        if Prng.float rng 1.0 < zero_frac then 0 else Prng.int rng q)
  in
  let y = Array.map (fun xi -> if Prng.bool rng then xi else (xi + 1) mod q) x in
  make ~n ~q ~x ~y

let union_size t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    if t.x.(i) <> 0 || t.y.(i) <> 0 then incr count
  done;
  !count

let equal t = t.x = t.y
