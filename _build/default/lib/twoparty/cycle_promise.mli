(** Inputs for the §7 two-party problems.

    An instance of UNIONSIZECP/EQUALITYCP consists of strings
    [X, Y ∈ \[0, q−1\]^n] under the {e cycle promise}: for every [i],
    [Y_i = X_i] or [Y_i = (X_i + 1) mod q]. *)

type t = {
  n : int;
  q : int;
  x : int array;
  y : int array;
}

val make : n:int -> q:int -> x:int array -> y:int array -> t
(** Validates ranges and the promise. *)

val random : rng:Ftagg_util.Prng.t -> n:int -> q:int -> ?force_equal:bool -> unit -> t
(** Uniform [X], then each [Y_i] independently equals [X_i] or
    [X_i + 1 mod q] with probability ½ ([force_equal] pins [Y = X]). *)

val random_sparse : rng:Ftagg_util.Prng.t -> n:int -> q:int -> zero_frac:float -> t
(** Like {!random} but each [X_i] is 0 with probability [zero_frac]
    (exercising the [A₀]-heavy corner of UNIONSIZECP). *)

val union_size : t -> int
(** Ground truth: [|{i : X_i ≠ 0 or Y_i ≠ 0}|]. *)

val equal : t -> bool
(** Ground truth: [X = Y]. *)
