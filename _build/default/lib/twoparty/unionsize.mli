(** UNIONSIZECP(n, q): Alice and Bob, holding cycle-promise strings [X]
    and [Y], compute [|{i : X_i ≠ 0 or Y_i ≠ 0}|] (Alice must learn it).

    {b The protocol} (deterministic, matching the [O(n/q·log n + log q)]
    upper bound of [4]).  Write [A_k = {i : X_i = k}],
    [B_k = {i : Y_i = k}], [u_k = |A_k ∩ B_k|], [v_k = |A_k ∩ B_{k+1}|].
    The promise gives [|A_k| = u_k + v_k] and [|B_k| = u_k + v_{k−1}],
    hence the walk recurrence [u_{k+1} = |B_{k+1}| − |A_k| + u_k].  The
    answer is [n − u_0].  Alice picks the sparsest class [k*]
    ([|A_{k*}| ≤ n/q]) and sends: [k*] ([⌈log q⌉] bits), the index set
    [A_{k*}] ([≤ (n/q + 1)·⌈log n⌉] bits), and the aggregate
    [Σ_{k ∈ walk} |A_k|] ([⌈log n⌉] bits, walk = [k*, …, q−1]).  Bob
    computes [u_{k*} = |A_{k*} ∩ B_{k*}|] from the set, unrolls the walk
    with his own [|B_k|] counts, and returns the answer ([⌈log n⌉] bits). *)

type outcome = {
  answer : int;
  alice_bits : int;
  bob_bits : int;
  total_bits : int;
}

val solve : Cycle_promise.t -> outcome
(** Run the protocol on an instance.  [answer] is what Alice learns. *)

val solve_on : Channel.t -> Cycle_promise.t -> int
(** Same, over a caller-supplied channel (used by the EQUALITYCP
    reduction to account a composite transcript). *)
