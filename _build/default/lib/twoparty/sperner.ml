let modulus = 1_000_000_007

let lemma11_matrix q =
  if q < 2 then invalid_arg "Sperner.lemma11_matrix: q must be >= 2";
  Array.init q (fun i ->
      Array.init q (fun j ->
          if j = i then 1 else if j = (i + 1) mod q then -1 else 0))

let rank_mod_p m =
  let rows = Array.length m in
  if rows = 0 then 0
  else begin
    let cols = Array.length m.(0) in
    let a =
      Array.map (Array.map (fun v -> ((v mod modulus) + modulus) mod modulus)) m
    in
    (* Modular inverse by Fermat: p is prime and fits in 30 bits, so
       products stay within 60 bits — safe native-int arithmetic. *)
    let rec power b e acc =
      if e = 0 then acc
      else power (b * b mod modulus) (e / 2) (if e land 1 = 1 then acc * b mod modulus else acc)
    in
    let inv v = power v (modulus - 2) 1 in
    let rank = ref 0 in
    let row = ref 0 in
    let col = ref 0 in
    while !row < rows && !col < cols do
      (* Find a pivot in this column. *)
      let pivot = ref (-1) in
      for r = !row to rows - 1 do
        if !pivot = -1 && a.(r).(!col) <> 0 then pivot := r
      done;
      if !pivot = -1 then incr col
      else begin
        let p = !pivot in
        let tmp = a.(p) in
        a.(p) <- a.(!row);
        a.(!row) <- tmp;
        let piv_inv = inv a.(!row).(!col) in
        for c = !col to cols - 1 do
          a.(!row).(c) <- a.(!row).(c) * piv_inv mod modulus
        done;
        for r = !row + 1 to rows - 1 do
          let factor = a.(r).(!col) in
          if factor <> 0 then
            for c = !col to cols - 1 do
              a.(r).(c) <- ((a.(r).(c) - (factor * a.(!row).(c) mod modulus)) mod modulus + modulus) mod modulus
            done
        done;
        incr rank;
        incr row;
        incr col
      end
    done;
    !rank
  end

let rows_sum_to_zero m =
  let rows = Array.length m in
  if rows = 0 then true
  else begin
    let cols = Array.length m.(0) in
    let ok = ref true in
    for c = 0 to cols - 1 do
      let s = ref 0 in
      for r = 0 to rows - 1 do
        s := !s + m.(r).(c)
      done;
      if !s <> 0 then ok := false
    done;
    !ok
  end

let lemma11_rank q =
  let m = lemma11_matrix q in
  let rk = rank_mod_p m in
  (* rank_p <= rank_Q <= q−1 (rows sum to zero); equality certifies. *)
  if not (rows_sum_to_zero m) then failwith "Sperner.lemma11_rank: structure violated";
  if rk <> q - 1 then
    failwith (Printf.sprintf "Sperner.lemma11_rank: modular rank %d <> q-1 = %d" rk (q - 1));
  q - 1

let equality_lower_bound ~n ~q =
  if q < 2 then invalid_arg "Sperner.equality_lower_bound";
  float_of_int n *. (log (1.0 +. (1.0 /. float_of_int (q - 1))) /. log 2.0)
