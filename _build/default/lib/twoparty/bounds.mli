(** Closed-form bound evaluators — the curves of Figure 1 and the §7
    theorem statements, used by the benchmark harness to plot measured
    values against the paper's asymptotics (constants set to 1). *)

val log2 : float -> float

val sum_upper_bound : n:int -> f:int -> b:int -> float
(** Theorem 1: [(f/b·log N + log N) · min(b, f, log N)] bits.  [f] is
    clamped to [>= 1] (the theorem's stated range). *)

val sum_upper_bound_simple : n:int -> f:int -> b:int -> float
(** The simplified form [f/b·log²N + log²N]. *)

val sum_lower_bound : n:int -> f:int -> b:int -> float
(** Theorem 2: [f/(b·log b) + log N / log b] bits ([b >= 2]). *)

val brute_force_cc : n:int -> float
(** [N·log N] — the brute-force baseline (TC [O(1)]). *)

val folklore_cc : n:int -> f:int -> float
(** [f·log N] — the folklore baseline (TC [O(f)]). *)

val unionsize_upper : n:int -> q:int -> float
(** [n/q·log n + log q] (from [4]). *)

val unionsize_lower : n:int -> q:int -> float
(** Theorem 12: [n/q − log n] (clamped at 0). *)
