type party = Alice | Bob

type t = { mutable alice : int; mutable bob : int }

let create () = { alice = 0; bob = 0 }

let charge t ~from ~bits =
  match from with
  | Alice -> t.alice <- t.alice + bits
  | Bob -> t.bob <- t.bob + bits

let fits v bits = v >= 0 && (bits >= 62 || v < 1 lsl bits)

let send t ~from ~bits v =
  if not (fits v bits) then
    invalid_arg (Printf.sprintf "Channel.send: %d does not fit in %d bits" v bits);
  charge t ~from ~bits;
  v

let send_list t ~from ~bits_each vs =
  List.iter
    (fun v ->
      if not (fits v bits_each) then invalid_arg "Channel.send_list: value too wide")
    vs;
  charge t ~from ~bits:(bits_each * (List.length vs + 1));
  vs

let bits_of t = function Alice -> t.alice | Bob -> t.bob

let total_bits t = t.alice + t.bob
