let log2 x = log x /. log 2.0

let logn n = log2 (float_of_int (max 2 n))

let sum_upper_bound ~n ~f ~b =
  (* the theorem is stated for 1 <= f <= N; clamp so the f = 0 display
     degenerates to the log^2 N floor instead of 0 *)
  let f = max f 1 in
  let ln = logn n in
  let fb = float_of_int f /. float_of_int b in
  ((fb *. ln) +. ln) *. Float.min (float_of_int b) (Float.min (float_of_int f) ln)

let sum_upper_bound_simple ~n ~f ~b =
  let ln = logn n in
  (float_of_int f /. float_of_int b *. ln *. ln) +. (ln *. ln)

let sum_lower_bound ~n ~f ~b =
  let f = max f 1 in
  let lb = log2 (float_of_int (max 2 b)) in
  (float_of_int f /. (float_of_int b *. lb)) +. (logn n /. lb)

let brute_force_cc ~n = float_of_int n *. logn n

let folklore_cc ~n ~f = float_of_int f *. logn n

let unionsize_upper ~n ~q =
  (float_of_int n /. float_of_int q *. logn n) +. log2 (float_of_int (max 2 q))

let unionsize_lower ~n ~q =
  Float.max 0.0 ((float_of_int n /. float_of_int q) -. logn n)
