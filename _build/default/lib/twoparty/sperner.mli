(** The Sperner-capacity rank argument behind Lemma 11.

    Theorem 9 (Calderbank–Frankl–Graham–Li–Shepp) bounds the number of
    pairwise "doubly cycle-separated" strings by [rank(M)^n] for any
    [q × q] matrix [M] with ones on the diagonal, zeros at offsets
    [2 … q−1], and arbitrary reals at offset [1] (cyclically).  Lemma 11
    chooses [−1] at offset 1, for which [rank(M) = q − 1]: the rows sum
    to zero (rank ≤ q−1) and the first [q−1] rows are independent
    (rank ≥ q−1).  This yields
    [R₀^pri(EQUALITYCP) ≥ log((q/(q−1))^n) ≥ n/(q−1)].

    We verify the rank exactly: Gaussian elimination over a prime field
    gives [rank_p(M) ≤ rank_ℚ(M)], and the all-rows-sum-to-zero identity
    gives [rank_ℚ(M) ≤ q−1]; observing [rank_p(M) = q−1] pins the
    rational rank. *)

val lemma11_matrix : int -> int array array
(** [lemma11_matrix q]: the [q × q] matrix with [M_{i,i} = 1],
    [M_{i,(i+1) mod q} = −1], all other entries 0. *)

val rank_mod_p : int array array -> int
(** Exact rank of an integer matrix over GF(1_000_000_007). *)

val rows_sum_to_zero : int array array -> bool

val lemma11_rank : int -> int
(** Certified rational rank of {!lemma11_matrix}[ q]: raises if the
    modular rank and the structural bound disagree with [q − 1]. *)

val equality_lower_bound : n:int -> q:int -> float
(** Lemma 11's bound [n·log₂(1 + 1/(q−1))] on
    [R₀^pri(EQUALITYCP_{n,q})], in bits. *)
