(** Fault-tolerant SELECTION and MEDIAN by binary search over COUNT.

    §2 of the paper notes (citing Patt-Shamir [16]) that MEDIAN and
    SELECTION reduce to COUNT by binary search over the output domain.
    This module performs that orchestration on top of the Algorithm 1
    tradeoff protocol: each probe [v] floods the threshold and runs one
    fault-tolerant COUNT of [{i : input_i <= v}]; [⌈log₂(max+1)⌉] probes
    pin the answer.

    Correctness under failures is interval-shaped, like every aggregate
    here: each COUNT lies between the survivor count and the full count,
    so the returned order statistic lies between the [k]-th smallest of
    the survivors' inputs and the [k]-th smallest of all inputs. *)

type outcome = {
  value : int;  (** the selected order statistic *)
  probes : int;  (** COUNT executions performed *)
  metrics : Ftagg_sim.Metrics.t;  (** merged across all probes *)
  rounds : int;  (** total rounds across all probes *)
}

val select :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Ftagg_proto.Params.t ->
  b:int ->
  f:int ->
  k:int ->
  seed:int ->
  outcome
(** The [k]-th smallest input ([1]-based) among participating nodes.
    [failures] is a single global schedule spanning the whole
    orchestration; each probe sees it shifted to its own start round. *)

val median :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Ftagg_proto.Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  outcome
(** One extra COUNT to learn the population size [m], then
    [select ~k:((m+1)/2)]. *)

val kth_smallest : int list -> int -> int
(** Reference order statistic ([1]-based) for checking, on a non-empty
    list with [1 <= k <= length]. *)
