lib/select/selection.mli: Ftagg_graph Ftagg_proto Ftagg_sim
