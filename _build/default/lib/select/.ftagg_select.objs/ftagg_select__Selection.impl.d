lib/select/selection.ml: Array Ftagg_caaf Ftagg_graph Ftagg_proto Ftagg_sim Ftagg_util
