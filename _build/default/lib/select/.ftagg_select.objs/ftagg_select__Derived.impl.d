lib/select/derived.ml: Array Float Ftagg_caaf Ftagg_graph Ftagg_proto Ftagg_sim
