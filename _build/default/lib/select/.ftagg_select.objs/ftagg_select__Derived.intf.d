lib/select/derived.mli: Ftagg_graph Ftagg_proto Ftagg_sim
