(** Derived statistics over one network: AVERAGE, VARIANCE and RANGE via
    sequential fault-tolerant CAAF runs.

    None of these are CAAFs themselves, but each decomposes into CAAFs
    (§2's observation): AVERAGE = SUM / COUNT, VARIANCE = SUM(x²)/COUNT −
    AVERAGE², RANGE = MAX − MIN.  Each component is computed by one
    Algorithm 1 execution; runs are chained under a single global failure
    schedule (each sees the schedule shifted to its own start round).

    Because components may observe slightly different surviving
    populations, the composites carry the components' interval guarantees
    rather than a single crisp interval; on a failure-free run they are
    exact. *)

type outcome = {
  average : float;
  variance : float;
  range : int;
  population : int;  (** the COUNT component's value *)
  metrics : Ftagg_sim.Metrics.t;  (** merged across all component runs *)
  rounds : int;
}

val summary :
  graph:Ftagg_graph.Graph.t ->
  failures:Ftagg_sim.Failure.t ->
  params:Ftagg_proto.Params.t ->
  b:int ->
  f:int ->
  seed:int ->
  outcome
(** Five chained Algorithm 1 runs: SUM, COUNT, SUM of squares, MAX, MIN.
    The params' CAAF field is ignored (each component picks its own). *)
