(* Live handoff: replace a running server without dropping a client.

   One process plays all three parts.  An *incumbent* `Transport.Listener`
   serves a unix socket (with its control socket alongside); a resilient
   `Transport.Client.session` submits a job and drains it; then a
   *successor* runs the takeover conversation over the control socket —
   the incumbent finishes in-flight work, writes its final checkpoint,
   and passes the live listening descriptor over SCM_RIGHTS.  The same
   client object then resubmits the same job against the successor: its
   retry loop treats the incumbent's goodbye as transient, reconnects,
   and the answer comes back as a cache hit off the restored checkpoint —
   the resubmission was idempotent, and no request ever failed.

   Everything is driven from this one thread: the session's [pump]
   callback polls whichever listeners are currently alive.

   Over a real deployment the same flow is:

     ftagg serve --listen unix:/tmp/ftagg.sock --checkpoint state.json &
     ...
     ftagg serve --takeover /tmp/ftagg.sock.ctl     # the successor
     # or, to drain-and-checkpoint without a successor yet:
     kill -USR2 <incumbent-pid>
*)

open Ftagg
module Listener = Transport.Listener
module Client = Transport.Client
module Handoff = Transport.Handoff

let () =
  Registry.set_enabled true;
  let dir = Filename.get_temp_dir_name () in
  let path = Filename.concat dir (Printf.sprintf "ftagg-handoff-%d.sock" (Unix.getpid ())) in
  let ctl = path ^ ".ctl" in
  let ckpt = Filename.concat dir (Printf.sprintf "ftagg-handoff-%d.ckpt.json" (Unix.getpid ())) in

  let mk_server () =
    Service.Server.create
      {
        Service.Server.settings =
          { Service.Reconfig.default with Service.Reconfig.tick_batch = 4; checkpoint_every = 0 };
        checkpoint_path = Some ckpt;
        store_dir = None;
        name = "handoff-demo";
      }
  in
  let incumbent =
    Result.get_ok (Listener.create (Listener.config (Listener.Unix_sock path)) (mk_server ()))
  in
  Printf.printf "incumbent    : listening on unix:%s (ctl %s)\n" path ctl;

  (* The listeners the pump currently drives; the handoff swaps this. *)
  let live = ref [ incumbent ] in
  let pump () = List.iter (fun l -> ignore (Listener.poll l)) !live in
  let session =
    Client.session
      ~retry:(Client.retry ~attempts:10 ~backoff_ms:2 ~max_backoff_ms:20 ())
      ~pump (Listener.Unix_sock path)
  in
  let say label = function
    | Ok line -> Printf.printf "%-13s: %s\n" label line
    | Error f -> failwith (Client.failure_message f)
  in

  Fun.protect
    ~finally:(fun () ->
      Client.sclose session;
      List.iter Listener.drain !live;
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; ctl; ckpt ])
    (fun () ->
      let job = {|{"op":"submit","job":{"family":"grid","n":16,"seed":7,"failures":"none"}}|} in
      say "submit" (Client.srequest session job);
      say "drain" (Client.srequest session {|{"op":"drain"}|});

      (* The successor's side of the control conversation: one call that
         drains the incumbent, checkpoints, and hands us the live fd. *)
      print_endline "\n-- takeover --";
      let tk, outcome =
        match Handoff.Takeover.run ~mode:Handoff.Fd_pass ~sleep:(fun _ -> pump ()) ~ctl () with
        | Ok x -> x
        | Error e -> failwith e
      in
      Printf.printf "successor    : adopting %s (checkpoint %s, fd %s)\n"
        outcome.Handoff.Takeover.address
        (Option.value outcome.Handoff.Takeover.checkpoint_path ~default:"-")
        (match outcome.Handoff.Takeover.fd with Some _ -> "passed" | None -> "rebind");
      let successor_server = mk_server () in
      (match Service.Server.restore_error successor_server with
      | Some e -> failwith ("refusing takeover: " ^ e)
      | None -> ());
      let successor =
        Result.get_ok
          (Listener.create ?adopted_fd:outcome.Handoff.Takeover.fd
             (Listener.config (Listener.Unix_sock path))
             successor_server)
      in
      live := [ incumbent; successor ];
      Handoff.Takeover.confirm tk;
      while not (Listener.handed_off incumbent) do
        pump ()
      done;
      Listener.drain incumbent;
      live := [ successor ];
      print_endline "incumbent    : handed off, exited\n";

      (* Same session object, same job: the goodbye was transient, the
         reconnect landed on the successor, and the restored cache makes
         the resubmission idempotent — note "cached": true below. *)
      say "resubmit" (Client.srequest session job);
      say "drain" (Client.srequest session {|{"op":"drain"}|});
      Printf.printf "\nsession healed %d time(s); no request failed\n" (Client.reconnects session))
