(* Tradeoff explorer: the Figure 1 experiment at CLI scale.

   Sweeps the time budget b and prints the measured communication
   complexity (bits at the busiest node) of the three protocols next to
   the paper's bound curves.  Watch the new protocol's CC fall as b grows
   while the baselines sit at fixed points.

     dune exec examples/tradeoff_explorer.exe
*)

open Ftagg

let () =
  let n = 64 in
  let net = Network.create Gen.Grid ~n ~seed:5 () in
  let graph = Network.graph net in
  let inputs = Array.make n 3 in
  let params = Network.params net ~inputs in
  let f = 16 in
  let seeds = [ 1; 2; 3 ] in

  Printf.printf "N = %d (grid, diameter %d), f = %d, CC = bits at busiest node\n\n" n
    (Network.diameter net) f;

  let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let avg_cc run = mean (List.map (fun s -> float_of_int (run s)) seeds) in

  (* Fixed-TC baselines, each under failures spread over its own window. *)
  let d = Network.diameter net in
  let brute s =
    let failures =
      Network.random_failures net ~budget:f ~max_round:(4 * d) ~seed:s
    in
    let o = Run.brute_force ~graph ~failures ~params ~seed:s () in
    Metrics.cc o.Run.common.Run.metrics
  in
  let folk s =
    let mode = Folklore.Retry (f + 1) in
    let failures =
      Network.random_failures net ~budget:f
        ~max_round:(Folklore.duration params mode) ~seed:s
    in
    let o = Run.folklore ~graph ~failures ~params ~mode ~seed:s () in
    Metrics.cc o.Run.common.Run.metrics
  in
  Printf.printf "brute-force  (TC = O(1)) : CC = %.0f bits\n" (avg_cc brute);
  Printf.printf "folklore     (TC = O(f)) : CC = %.0f bits\n\n" (avg_cc folk);

  let table =
    Table.create ~title:"Algorithm 1 across the time budget b"
      [
        ("b (flooding rounds)", Table.Right);
        ("measured CC", Table.Right);
        ("upper bound", Table.Right);
        ("lower bound", Table.Right);
      ]
  in
  List.iter
    (fun b ->
      let cc =
        avg_cc (fun s ->
            (* Failures spread over the whole b·d-round execution, the
               regime where Algorithm 1's per-interval analysis bites. *)
            let failures = Network.random_failures net ~budget:f ~max_round:(b * d) ~seed:s in
            let o = Run.tradeoff ~graph ~failures ~params ~b ~f ~seed:s () in
            Metrics.cc o.Run.common.Run.metrics)
      in
      Table.add_row table
        [
          string_of_int b;
          Printf.sprintf "%.0f" cc;
          Printf.sprintf "%.0f" (Bounds.sum_upper_bound ~n ~f ~b);
          Printf.sprintf "%.1f" (Bounds.sum_lower_bound ~n ~f ~b);
        ])
    [ 42; 63; 84; 126; 168; 252 ];
  Table.print table
