(* Quickstart: fault-tolerant SUM on a 6×6 grid.

   Build a network, give every node an input, crash a few nodes while the
   protocol runs, and let the root compute the sum within a time budget of
   b flooding rounds.  Run with:

     dune exec examples/quickstart.exe
*)

open Ftagg

let () =
  (* A 6×6 grid; node 0 (the root / base station) sits in a corner. *)
  let net = Network.create Gen.Grid ~n:36 ~seed:1 () in
  Printf.printf "network: %d nodes, diameter %d\n" (Network.n net) (Network.diameter net);

  (* Every node holds the input 10 + its id. *)
  let inputs = Array.init (Network.n net) (fun i -> 10 + i) in
  let total = Array.fold_left ( + ) 0 inputs in

  (* An adversary crashes nodes during the run, up to 5 edge failures. *)
  let failures = Network.random_failures net ~budget:5 ~seed:42 in
  Printf.printf "adversary kills nodes %s\n"
    (String.concat ", " (List.map string_of_int (Failure.crashed_nodes failures)));

  (* Fault-tolerant SUM: time budget b = 50 flooding rounds, failure
     budget f = 5.  The result is guaranteed to lie between the sum of
     the survivors' inputs and the sum of all inputs. *)
  let r = Network.sum net ~inputs ~failures ~b:50 ~f:5 in
  Printf.printf "sum = %d (all-alive total %d), verified correct: %b\n" (Network.value_exn r)
    total r.Network.correct;
  Printf.printf "cost: %d bits at the busiest node, %d flooding rounds\n" r.Network.cc
    r.Network.flooding_rounds;

  (* Any commutative-associative aggregate works the same way. *)
  let r = Network.aggregate net ~caaf:Instances.max_ ~inputs ~failures ~b:50 ~f:5 in
  Printf.printf "max = %d, verified correct: %b\n" (Network.value_exn r) r.Network.correct
