(* Wireless sensor network: a base station computes the average reading.

   The paper's motivating deployment (§1): sensors report to a base
   station over a multi-hop radio topology where every transmission is a
   local broadcast and sensors die mid-collection.  AVERAGE is not itself
   a CAAF, but (SUM, COUNT) are, and AVERAGE = SUM / COUNT — both computed
   fault-tolerantly by Algorithm 1.  A regional power failure takes out a
   sensor and its whole radio neighbourhood (the paper's Figure 3
   scenario), and the result is still a valid average over a set between
   "the sensors that survived" and "all sensors".

     dune exec examples/sensor_network.exe
*)

open Ftagg

let () =
  (* A sparse random mesh of 80 sensors; node 0 is the base station. *)
  let n = 80 in
  let net = Network.create (Gen.Random 0.04) ~n ~seed:7 () in
  Printf.printf "sensor mesh: %d sensors, diameter %d\n" n (Network.diameter net);

  (* Temperature readings in tenths of a degree, 180..320 (18.0–32.0 °C). *)
  let rng = Prng.create 20260704 in
  let readings = Array.init n (fun _ -> 180 + Prng.int rng 141) in

  (* A regional blackout: sensor 25 and its whole neighbourhood go dark
     one third of the way into the collection window. *)
  let b = 60 and f = 12 in
  let window = b * Network.diameter net in
  let failures = Failure.neighborhood (Network.graph net) ~center:25 ~round:(window / 3) in
  let dead = Failure.crashed_nodes failures in
  Printf.printf "blackout: sensors %s go dark at round %d\n"
    (String.concat ", " (List.map string_of_int dead))
    (window / 3);

  (* Fault-tolerant SUM and COUNT over the same window. *)
  let sum_r = Network.sum net ~inputs:readings ~failures ~b ~f in
  let ones = Array.make n 1 in
  let count_r = Network.aggregate net ~caaf:Instances.count ~inputs:ones ~failures ~b ~f in

  let avg = float_of_int (Network.value_exn sum_r) /. float_of_int (Network.value_exn count_r) in
  Printf.printf "sum of readings   : %d (verified: %b)\n" (Network.value_exn sum_r)
    sum_r.Network.correct;
  Printf.printf "sensors counted   : %d of %d (verified: %b)\n" (Network.value_exn count_r) n
    count_r.Network.correct;
  Printf.printf "average reading   : %.1f °C\n" (avg /. 10.0);

  (* Reference: averages over the two extreme admissible populations. *)
  let all_avg =
    float_of_int (Array.fold_left ( + ) 0 readings) /. float_of_int n /. 10.0
  in
  let live =
    List.filter (fun i -> not (List.mem i dead)) (List.init n (fun i -> i))
  in
  let live_avg =
    float_of_int (List.fold_left (fun acc i -> acc + readings.(i)) 0 live)
    /. float_of_int (List.length live) /. 10.0
  in
  Printf.printf "reference         : all-sensor avg %.1f °C, survivor avg %.1f °C\n" all_avg
    live_avg;
  Printf.printf "cost              : %d + %d bits at the busiest node\n" sum_r.Network.cc
    count_r.Network.cc;

  (* The same average in a SINGLE protocol run: bit-pack (SUM, COUNT)
     into one CAAF with Instances.packed2. *)
  let bits = 16 in
  let packed_caaf = Instances.packed2 ~bits Instances.sum Instances.count in
  let packed_inputs = Array.map (fun r -> Instances.pack2 ~bits r 1) readings in
  let one_run =
    Network.aggregate net ~caaf:packed_caaf ~inputs:packed_inputs ~failures ~b ~f
  in
  let psum, pcount = Instances.unpack2 ~bits (Network.value_exn one_run) in
  Printf.printf "single-run average: %.1f °C from one execution (%d bits cc, verified %b)\n"
    (float_of_int psum /. float_of_int (max pcount 1) /. 10.0)
    one_run.Network.cc one_run.Network.correct
