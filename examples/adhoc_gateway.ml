(* Ad hoc network gateway: worst-case latency monitoring under failures.

   The gateway (root) of a wireless ad hoc network tracks per-node queue
   latencies.  It wants the worst latency (MAX — a CAAF) and the 90th
   percentile (SELECTION via binary search over fault-tolerant COUNT,
   §2's reduction) while a moving failure burst kills a relay cluster
   mid-collection.

     dune exec examples/adhoc_gateway.exe
*)

open Ftagg

let () =
  let n = 60 in
  (* A caterpillar: a relay backbone with leaf stations — a shape where
     one dead relay blocks a whole branch, the paper's hard case. *)
  let net = Network.create Gen.Caterpillar ~n ~seed:3 () in
  Printf.printf "ad hoc network: %d stations, diameter %d\n" n (Network.diameter net);

  (* Latencies in ms: mostly small with a heavy tail. *)
  let rng = Prng.create 99 in
  let latencies =
    Array.init n (fun _ ->
        let base = 5 + Prng.int rng 40 in
        if Prng.int rng 10 = 0 then base + 200 + Prng.int rng 300 else base)
  in

  (* A relay cluster near the backbone's end fails while aggregation
     runs, severing a handful of stations. *)
  let b = 64 and f = 10 in
  let failures =
    Failure.kill_nodes ~n ~nodes:[ 26; 27; 28 ] ~round:(3 * Network.diameter net)
  in
  Printf.printf "burst: relays 26, 27, 28 fail early in the window\n";

  (* Worst latency (MAX). *)
  let max_r = Network.aggregate net ~caaf:Instances.max_ ~inputs:latencies ~failures ~b ~f in
  Printf.printf "max latency       : %d ms (verified: %b, %d bits/node cc)\n"
    (Network.value_exn max_r) max_r.Network.correct max_r.Network.cc;

  (* 75th percentile via SELECTION: k = ceil(0.75 n).  (The order must
     stay within the surviving population — the burst severs a few
     stations, so their tail latencies may legitimately drop out.) *)
  let k = (3 * n) / 4 in
  let sel = Network.select net ~inputs:latencies ~failures ~b ~f ~k in
  Printf.printf "p75 latency       : %d ms (%d COUNT probes, %d rounds total)\n"
    sel.Selection.value sel.Selection.probes sel.Selection.rounds;

  (* Reference percentiles over the two extreme admissible populations. *)
  (* The guarantee is interval-shaped: the answer lies between the k-th
     smallest over ALL stations and the k-th smallest over the SURVIVORS
     (k stays fixed, so against the smaller surviving population it is a
     higher percentile). *)
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let survivors =
    Path.reachable_from_root (Graph.remove_nodes (Network.graph net) [ 26; 27; 28 ])
  in
  let surv_sorted =
    List.map (fun i -> latencies.(i)) survivors |> List.sort compare |> Array.of_list
  in
  Printf.printf "reference         : k=%d over all stations = %d ms, over %d survivors = %d ms\n"
    k
    sorted.(k - 1)
    (Array.length surv_sorted)
    surv_sorted.(min (k - 1) (Array.length surv_sorted - 1));
  Printf.printf "                    true max = %d ms\n" sorted.(n - 1);

  (* The MIN latency, exercising a Decreasing CAAF end to end. *)
  let min_r = Network.aggregate net ~caaf:Instances.min_ ~inputs:latencies ~failures ~b ~f in
  Printf.printf "min latency       : %d ms (verified: %b)\n" (Network.value_exn min_r)
    min_r.Network.correct
