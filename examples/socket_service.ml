(* Socket service: the aggregation service behind a real unix socket.

   One process plays both sides.  A `Transport.Listener` wraps a
   long-lived `Service.Server` behind a unix-domain socket with a
   two-token auth table; two raw clients connect concurrently, identify
   as different tenants, and submit the *same* job — the second answer
   comes from the shared result cache.  A third client shows what a bad
   token gets.  The listener is driven with `Listener.poll`, the
   single-step form of the event loop, so the demo is deterministic and
   needs no threads.

   Over a real deployment the server side is just:

     ftagg serve --listen unix:/tmp/ftagg.sock --auth-file auth.json

     dune exec examples/socket_service.exe
*)

open Ftagg
module Listener = Transport.Listener
module Session = Transport.Session
module Auth = Transport.Auth
module Frame = Transport.Frame

(* A raw demo client: blocking connect plus a client-side framer. *)
type client = { fd : Unix.file_descr; frame : Transport.Frame.t; mutable inbox : string list }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; frame = Frame.create ~max_line:1_000_000; inbox = [] }

let send c line =
  let b = line ^ "\n" in
  ignore (Unix.write_substring c.fd b 0 (String.length b))

(* Pump the listener until the client has a reply (bounded: a hang here
   is a bug, not a wait). *)
let recv t c =
  let rec go tries =
    if tries = 0 then failwith "no response"
    else
      match c.inbox with
      | line :: rest ->
        c.inbox <- rest;
        line
      | [] ->
        ignore (Listener.poll t);
        (match Unix.select [ c.fd ] [] [] 0.01 with
        | [ _ ], _, _ -> (
          let buf = Bytes.create 4096 in
          match Unix.read c.fd buf 0 4096 with
          | 0 -> failwith "server hung up"
          | n ->
            c.inbox <-
              c.inbox
              @ List.filter_map
                  (function Frame.Line l -> Some l | Frame.Oversized _ -> None)
                  (Frame.feed c.frame buf ~off:0 ~len:n))
        | _ -> ());
        go (tries - 1)
  in
  go 500

let () =
  Registry.set_enabled true;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ftagg-example-%d.sock" (Unix.getpid ()))
  in

  (* The service: small queue, small cache, the stdin `ftagg serve`
     engine — just fronted by a socket instead of a pipe. *)
  let server =
    Service.Server.create
      {
        Service.Server.settings =
          { Service.Reconfig.default with Service.Reconfig.tick_batch = 4; checkpoint_every = 0 };
        checkpoint_path = None;
        store_dir = None;
        name = "socket-demo";
      }
  in
  let auth =
    Result.get_ok
      (Auth.of_json
         (Result.get_ok
            (Bench_io.of_string {|{"alpha-sekrit": "alpha", "beta-sekrit": "beta"}|})))
  in
  let t =
    Result.get_ok
      (Listener.create
         (Listener.config ~auth:(Session.Tokens auth) (Listener.Unix_sock path))
         server)
  in
  Printf.printf "listening on unix:%s (%d tokens, %d tenants)\n\n" path (Auth.size auth)
    (List.length (Auth.tenants auth));

  Fun.protect
    ~finally:(fun () ->
      Listener.drain t;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* Two tenants, interleaved handshakes. *)
      let alice = connect path and bob = connect path in
      send alice {|{"op":"hello","token":"alpha-sekrit"}|};
      send bob {|{"op":"hello","token":"beta-sekrit"}|};
      Printf.printf "alice hello  : %s\n" (recv t alice);
      Printf.printf "bob hello    : %s\n" (recv t bob);

      (* The same question from both — note each claims to be "mallory"
         in the body; the handshake identity wins. *)
      let job =
        {|{"op":"submit","job":{"family":"grid","n":16,"seed":7,"tenant":"mallory","failures":"none"}}|}
      in
      send alice job;
      send bob job;
      Printf.printf "alice submit : %s\n" (recv t alice);
      Printf.printf "bob submit   : %s\n" (recv t bob);

      send alice {|{"op":"drain"}|};
      Printf.printf "drain        : %s\n\n" (recv t alice);

      (* A third connection with a bad token is refused at the door. *)
      let eve = connect path in
      send eve {|{"op":"hello","token":"wrong"}|};
      Printf.printf "eve hello    : %s\n\n" (recv t eve);

      (* The transport's own counters ride the ordinary metrics op, as a
         prometheus text blob. *)
      send bob {|{"op":"metrics"}|};
      let metrics = recv t bob in
      (match Bench_io.of_string metrics with
      | Ok json -> (
        match Bench_io.member "prometheus" json with
        | Some (Bench_io.String text) ->
          List.iter
            (fun line ->
              if String.length line >= 10 && String.sub line 0 10 = "transport_" then
                print_endline line)
            (String.split_on_char '\n' text)
        | _ -> ())
      | Error _ -> ());
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()) [ alice; bob; eve ])
