(* ftagg — command-line front end.

   Subcommands:
     run       run a protocol on a generated topology under an adversary
     trace     run a protocol with telemetry; export Chrome trace / JSONL
     stats     run a protocol and print its metric registry
     graph     print statistics of a generated topology
     twoparty  run the §7 two-party protocols on a random instance
     rank      certify Lemma 11's rank(M) = q−1 for a given q
     chaos     randomized chaos campaign; replay re-runs saved incidents
     serve     long-lived aggregation service (line-based JSON protocol)
     client    run service request scripts against an in-process server

   Examples:
     ftagg run -p tradeoff -t grid -n 64 -f 8 -b 60 --failures random
     ftagg trace -p tradeoff -t grid -n 256 -f 16 -o out.trace.json
     ftagg stats -p pair -t grid -n 64 --prom
     ftagg twoparty -n 4096 -q 32
     ftagg rank -q 17
     ftagg serve --checkpoint svc.ckpt.json < requests.jsonl

   Exit codes (uniform across subcommands, see README):
     0  success
     1  findings — chaos incidents found, non-reproducing replay
     2  protocol abort — pair/agg Aborted, folklore without a clean
        epoch, a service request answered with an error
     3  bad input or invalid generated output — unknown protocol or
        failure mode, unreadable incident/request file, trace that
        fails its own round-trip check
     124/125  cmdliner usage / internal errors *)

open Cmdliner
open Ftagg

let topology_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "path" -> Ok Gen.Path
    | "ring" -> Ok Gen.Ring
    | "grid" -> Ok Gen.Grid
    | "star" -> Ok Gen.Star
    | "tree" | "binary_tree" -> Ok Gen.Binary_tree
    | "complete" -> Ok Gen.Complete
    | "caterpillar" -> Ok Gen.Caterpillar
    | "lollipop" -> Ok Gen.Lollipop
    | "random" -> Ok (Gen.Random 0.05)
    | "torus" -> Ok Gen.Torus
    | "regular" | "random_regular" -> Ok (Gen.Random_regular 4)
    | other -> Error (`Msg (Printf.sprintf "unknown topology %S" other))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Gen.family_name f))

let caaf_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "sum" -> Ok Instances.sum
    | "count" -> Ok Instances.count
    | "max" -> Ok Instances.max_
    | "min" -> Ok Instances.min_
    | "or" -> Ok Instances.bool_or
    | "and" -> Ok Instances.bool_and
    | "gcd" -> Ok Instances.gcd
    | other -> Error (`Msg (Printf.sprintf "unknown aggregate %S" other))
  in
  Arg.conv (parse, fun ppf (c : Caaf.t) -> Format.pp_print_string ppf c.Caaf.name)

(* Common options *)
let topology =
  Arg.(value & opt topology_conv Gen.Grid & info [ "t"; "topology" ] ~doc:"Topology family.")

let nodes = Arg.(value & opt int 64 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")
let seed = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~doc:"Random seed.")

let make_failures graph ~mode ~budget ~seed ~window =
  let n = Graph.n graph in
  match String.lowercase_ascii mode with
  | "none" -> Failure.none ~n
  | "random" -> Failure.random graph ~rng:(Prng.create seed) ~budget ~max_round:window
  | "burst" -> Failure.burst graph ~rng:(Prng.create seed) ~budget ~round:(window / 3)
  | "chain" -> Failure.chain ~n ~first:1 ~len:(min budget (n - 2)) ~round:(window / 3)
  | "neighborhood" -> Failure.neighborhood graph ~center:(n / 2) ~round:(window / 3)
  | other ->
    Printf.eprintf "ftagg: unknown failure mode %S\n" other;
    exit 3

let protocol_arg =
  Arg.(
    value
    & opt string "tradeoff"
    & info [ "p"; "protocol" ]
        ~doc:"One of: tradeoff, brute, folklore, naive, unknown-f, pair, agg.")

(* Run one protocol by name with a telemetry sink attached.  Returns the
   rendered root value, the exit code (0 ok, 2 protocol abort) and the
   run's common outcome. *)
let exec_traced ~protocol ~obs ~graph ~failures ~params ~b ~f ~seed =
  match String.lowercase_ascii protocol with
  | "tradeoff" ->
    let o = Run.tradeoff ~obs ~graph ~failures ~params ~b ~f ~seed () in
    (string_of_int (Run.value_exn o.Run.result), 0, o.Run.common)
  | "brute" ->
    let o = Run.brute_force ~obs ~graph ~failures ~params ~seed () in
    (string_of_int (Run.value_exn o.Run.result), 0, o.Run.common)
  | "unknown-f" | "unknown_f" ->
    let o = Run.unknown_f ~obs ~graph ~failures ~params ~seed () in
    (string_of_int (Run.value_exn o.Run.result), 0, o.Run.common)
  | "folklore" | "naive" ->
    let mode =
      if String.lowercase_ascii protocol = "naive" then Folklore.Naive else Folklore.Retry (f + 1)
    in
    let o = Run.folklore ~obs ~graph ~failures ~params ~mode ~seed () in
    (match o.Run.f_result with
    | Folklore.Value v -> (string_of_int v, 0, o.Run.common)
    | Folklore.No_clean_epoch -> ("<no clean epoch>", 2, o.Run.common))
  | "pair" ->
    let o = Run.pair ~obs ~graph ~failures ~params ~seed () in
    (match o.Run.result with
    | Agg.Value v -> (string_of_int v, 0, o.Run.common)
    | Agg.Aborted -> ("<aborted>", 2, o.Run.common))
  | "agg" ->
    let o = Run.agg ~obs ~graph ~failures ~params ~seed () in
    (match o.Run.result with
    | Agg.Value v -> (string_of_int v, 0, o.Run.common)
    | Agg.Aborted -> ("<aborted>", 2, o.Run.common))
  | other ->
    Printf.eprintf "ftagg: unknown protocol %S\n" other;
    exit 3

(* The massive-scale data path: a streamed Bigraph CSR through the
   partitioned executor (lib/scale), never materialising the adjacency
   sets.  Supports the streaming topology specs (grid, torus, regular)
   and the failure modes that need no materialised graph (none, chain).
   Returns the process exit code. *)
let run_scale ~topology ~n ~seed ~tol ~fmode ~budget ~max_input ~domains ~mem_limit ~pin =
  match Bigraph.spec_of_family topology with
  | None ->
    Printf.eprintf "ftagg: --scale supports grid, torus and regular topologies (got %s)\n"
      (Gen.family_name topology);
    3
  | Some spec -> (
    let build0 = Unix.gettimeofday () in
    let bg = Bigraph.build spec ~n ~seed in
    let build_s = Unix.gettimeofday () -. build0 in
    (match Bigraph.validate ~spec bg with
    | Ok () -> ()
    | Error e ->
      Printf.eprintf "ftagg: generated %s graph fails validation: %s\n" (Bigraph.spec_name spec) e;
      exit 3);
    let rng = Prng.create (seed + 17) in
    let inputs = Params.random_inputs ~rng ~n ~max_input in
    let params = Scale_run.params ~t:(Option.value tol ~default:1) ~graph:bg ~inputs () in
    let duration = Agg.duration params in
    let failures =
      match String.lowercase_ascii fmode with
      | "none" -> Failure.none ~n
      | "random" ->
        (* The global default adversary samples over a materialised graph;
           at scale fall back to the failure-free run rather than refuse
           a bare [ftagg run --scale]. *)
        Printf.eprintf "ftagg: --scale has no %S adversary; running failure-free\n" fmode;
        Failure.none ~n
      | "chain" -> Failure.chain ~n ~first:1 ~len:(min budget (n - 2)) ~round:(max 1 (duration / 3))
      | other ->
        Printf.eprintf "ftagg: --scale supports failure modes none and chain (got %S)\n" other;
        exit 3
    in
    let registry = Registry.create () in
    let meter =
      Scale_mem.create ~registry
        ?limit_bytes:(Option.map (fun mb -> mb * 1024 * 1024) mem_limit)
        ~n ()
    in
    let t0 = Unix.gettimeofday () in
    match Scale_run.agg ~domains ~meter ~registry ~graph:bg ~failures ~params ~seed () with
    | exception Scale_mem.Ceiling_exceeded { limit_bytes; live_bytes; round } ->
      Printf.eprintf "ftagg: memory ceiling exceeded at round %d (%d MiB live > %d MiB limit)\n"
        round
        (live_bytes / (1024 * 1024))
        (limit_bytes / (1024 * 1024));
      2
    | o ->
      let wall = Unix.gettimeofday () -. t0 in
      let failure_free = Failure.crashed_nodes failures = [] in
      let v, code =
        match o.Scale_run.result with
        | Agg.Value v -> (string_of_int v, 0)
        | Agg.Aborted -> ("<aborted>", 2)
      in
      let gauge name = Option.value (Registry.gauge registry name) ~default:0.0 in
      Printf.printf "%-10s %s = %s\n" "AGG(scale)" params.Params.caaf.Caaf.name v;
      if failure_free then
        Printf.printf "correct    : %b (expected %d)\n"
          (o.Scale_run.result = Agg.Value (Scale_run.expected_sum params))
          (Scale_run.expected_sum params);
      Printf.printf "graph      : %s, %d nodes, %d edges, pseudo-diameter %d (built in %.2fs)\n"
        (Bigraph.spec_name spec) n (Bigraph.num_edges bg) params.Params.d build_s;
      Printf.printf "CC         : %d bits (busiest node)\n" (Metrics.cc o.Scale_run.metrics);
      Printf.printf "TC         : %d rounds (duration cap %d) in %.2fs = %.1f rounds/s\n"
        o.Scale_run.rounds duration wall
        (float_of_int o.Scale_run.rounds /. Float.max wall 1e-9);
      Printf.printf "domains    : %d (%d frontier edges)\n" domains
        (int_of_float (gauge "scale_frontier_edges"));
      Printf.printf "memory     : %.1f bytes/node live, %.1f MiB peak live, %.1f MiB peak RSS\n"
        (gauge "scale_bytes_per_node")
        (gauge "scale_peak_live_bytes" /. (1024.0 *. 1024.0))
        (gauge "scale_peak_rss_kb" /. 1024.0);
      Printf.printf "pool       : %d acquires, high water %d, %d in use at exit\n"
        (Registry.counter registry ~labels:[ ("pool", "executor") ] "scale_pool_acquires_total")
        (int_of_float (Registry.gauge registry ~labels:[ ("pool", "executor") ] "scale_pool_high_water" |> Option.value ~default:0.0))
        (int_of_float (Registry.gauge registry ~labels:[ ("pool", "executor") ] "scale_pool_in_use" |> Option.value ~default:0.0));
      if not pin then code
      else begin
        (* Differential pin: materialise the same topology and replay the
           identical run through Engine.run.  Meant for small n (the
           reference engine allocates adjacency sets). *)
        let g = Bigraph.to_graph bg in
        let r = Run.agg ~graph:g ~failures ~params ~seed () in
        let ok =
          r.Run.result = o.Scale_run.result
          && r.Run.common.Run.rounds = o.Scale_run.rounds
          && Metrics.cc r.Run.common.Run.metrics = Metrics.cc o.Scale_run.metrics
          && Metrics.total_bits r.Run.common.Run.metrics = Metrics.total_bits o.Scale_run.metrics
        in
        Printf.printf "pin        : %s\n"
          (if ok then "OK (byte-identical to Engine.run)" else "MISMATCH vs Engine.run");
        if ok then code else 1
      end)

let run_cmd =
  let protocol = protocol_arg in
  let caaf = Arg.(value & opt caaf_conv Instances.sum & info [ "aggregate" ] ~doc:"CAAF.") in
  let b = Arg.(value & opt int 63 & info [ "b" ] ~doc:"Time budget in flooding rounds.") in
  let f = Arg.(value & opt int 8 & info [ "f" ] ~doc:"Edge-failure budget.") in
  let tol = Arg.(value & opt (some int) None & info [ "tolerance" ] ~doc:"t for pair/agg.") in
  let fmode =
    Arg.(
      value
      & opt string "random"
      & info [ "failures" ] ~doc:"Adversary: none, random, burst, chain, neighborhood.")
  in
  let budget = Arg.(value & opt (some int) None & info [ "budget" ] ~doc:"Edge failures to inject (default f).") in
  let max_input = Arg.(value & opt int 100 & info [ "max-input" ] ~doc:"Inputs drawn from [0, max].") in
  let backend =
    Arg.(
      value
      & opt (some string) None
      & info [ "backend" ]
          ~doc:
            "Run a registered protocol backend (agg, flood, folklore, pushsum, flowupdating, \
             flowupdating-avg) through the unified Run.exec harness instead of $(b,--protocol). \
             Exact and approximate backends print the same outcome shape.")
  in
  let scale =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Run AGG on the massive-scale data path: a streamed CSR graph (never materialised) \
             through the multi-domain partitioned executor, with memory metering.  Supports \
             grid, torus and regular topologies and the none/chain failure modes; \
             $(b,--protocol), $(b,--backend) and $(b,--aggregate) are ignored (AGG over SUM).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Executor partitions, one OCaml domain each (with --scale).")
  in
  let mem_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-limit" ] ~docv:"MIB"
          ~doc:"Abort cleanly (exit 2) if live heap exceeds this many MiB (with --scale).")
  in
  let pin =
    Arg.(
      value & flag
      & info [ "pin" ]
          ~doc:
            "After the scale run, materialise the same topology, replay through the reference \
             Engine.run and compare results, rounds, CC and total bits; exit 1 on mismatch.  \
             Small n only — the reference engine allocates the full adjacency structure.")
  in
  let run protocol topology n seed caaf b f tol fmode budget max_input backend_opt scale domains
      mem_limit pin =
    if scale then
      run_scale ~topology ~n ~seed ~tol ~fmode ~budget:(Option.value budget ~default:f)
        ~max_input ~domains ~mem_limit ~pin
    else begin
    let graph = Gen.build topology ~n ~seed in
    let rng = Prng.create (seed + 17) in
    let inputs = Params.random_inputs ~rng ~n ~max_input in
    let t = Option.value tol ~default:(max 1 (2 * f)) in
    let params = Params.make ~c:2 ~t ~caaf ~graph ~inputs () in
    let d = params.Params.d in
    let window = b * d in
    let budget = Option.value budget ~default:f in
    let failures = make_failures graph ~mode:fmode ~budget ~seed:(seed + 3) ~window in
    let print_common name value (c : Run.common) =
      Printf.printf "%-10s %s = %s\n" name params.Params.caaf.Caaf.name value;
      Printf.printf "correct    : %b\n" c.Run.correct;
      Printf.printf "CC         : %d bits (busiest node)\n" (Metrics.cc c.Run.metrics);
      Printf.printf "TC         : %d rounds = %d flooding rounds (d = %d)\n" c.Run.rounds
        c.Run.flooding_rounds d;
      Printf.printf "edge fails : %d injected\n" (Failure.edge_failures graph failures)
    in
    (* Exit code 2 on a protocol abort (pair/agg [Aborted], folklore
       [No_clean_epoch]) so scripts and CI can gate on the outcome. *)
    match backend_opt with
    | Some bname -> (
      match Run.backend_of_string bname with
      | None ->
        Printf.eprintf "ftagg: unknown backend %S (have: %s)\n" bname
          (String.concat ", " (List.map fst Run.backends));
        3
      | Some backend ->
        let o = Run.exec ~backend ~graph ~failures ~params ~b ~f ~seed () in
        let v, code =
          match o.Backend.result with
          | Backend.Exact (Agg.Value v) -> (string_of_int v, 0)
          | Backend.Exact Agg.Aborted -> ("<aborted>", 2)
          | Backend.Estimate { value; relative_error } ->
            (Printf.sprintf "%.6g (relative error %.3g)" value relative_error, 0)
        in
        print_common (Backend.name backend) v o.Backend.common;
        Printf.printf "guarantee  : %s\n" (Backend.guarantee backend);
        List.iter (fun (k, v) -> Printf.printf "%-11s: %s\n" k v) o.Backend.evidence;
        code)
    | None -> (
    match String.lowercase_ascii protocol with
    | "tradeoff" ->
      let o = Run.tradeoff ~graph ~failures ~params ~b ~f ~seed () in
      print_common "tradeoff" (string_of_int (Run.value_exn o.Run.result)) o.Run.common;
      Printf.printf "via        : %s\n"
        (match o.Run.how with
        | Tradeoff.Via_pair y -> Printf.sprintf "AGG+VERI pair in interval %d" y
        | Tradeoff.Via_brute_force -> "brute-force fallback");
      0
    | "brute" ->
      let o = Run.brute_force ~graph ~failures ~params ~seed () in
      print_common "brute" (string_of_int (Run.value_exn o.Run.result)) o.Run.common;
      0
    | "folklore" ->
      let o = Run.folklore ~graph ~failures ~params ~mode:(Folklore.Retry (f + 1)) ~seed () in
      let v =
        match o.Run.f_result with
        | Folklore.Value v -> string_of_int v
        | Folklore.No_clean_epoch -> "<no clean epoch>"
      in
      print_common "folklore" v o.Run.common;
      Printf.printf "epochs     : %d\n" o.Run.epochs;
      if o.Run.f_result = Folklore.No_clean_epoch then 2 else 0
    | "naive" ->
      let o = Run.folklore ~graph ~failures ~params ~mode:Folklore.Naive ~seed () in
      let v =
        match o.Run.f_result with
        | Folklore.Value v -> string_of_int v
        | Folklore.No_clean_epoch -> "<dirty>"
      in
      print_common "naive-TAG" v o.Run.common;
      if o.Run.f_result = Folklore.No_clean_epoch then 2 else 0
    | "unknown-f" | "unknown_f" ->
      let o = Run.unknown_f ~graph ~failures ~params ~seed () in
      print_common "unknown-f" (string_of_int (Run.value_exn o.Run.result)) o.Run.common;
      Printf.printf "via        : %s\n"
        (match o.Run.how with
        | Unknown_f.Via_slot g -> Printf.sprintf "slot %d (t = %d)" g (1 lsl g)
        | Unknown_f.Via_brute_force -> "brute-force fallback");
      0
    | "pair" ->
      let o = Run.pair ~graph ~failures ~params ~seed () in
      let v =
        match o.Run.verdict.Pair.result with
        | Agg.Value v -> string_of_int v
        | Agg.Aborted -> "<aborted>"
      in
      print_common "AGG+VERI" v o.Run.common;
      Printf.printf "VERI says  : %b   (ground truth: LFC = %b, %d edge failures in window)\n"
        o.Run.verdict.Pair.veri_ok o.Run.lfc o.Run.edge_failures;
      if o.Run.verdict.Pair.result = Agg.Aborted then 2 else 0
    | "agg" ->
      let o = Run.agg ~graph ~failures ~params ~seed () in
      let v =
        match o.Run.result with
        | Agg.Value v -> string_of_int v
        | Agg.Aborted -> "<aborted>"
      in
      print_common "AGG" v o.Run.common;
      if o.Run.result = Agg.Aborted then 2 else 0
    | other ->
      Printf.eprintf "ftagg: unknown protocol %S\n" other;
      3)
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a protocol on a generated topology under an adversary.")
    Term.(
      const run $ protocol $ topology $ nodes $ seed $ caaf $ b $ f $ tol $ fmode $ budget
      $ max_input $ backend $ scale $ domains $ mem_limit $ pin)

let graph_cmd =
  let run topology n seed =
    let g = Gen.build topology ~n ~seed in
    Printf.printf "topology : %s\n" (Gen.family_name topology);
    Printf.printf "nodes    : %d\n" (Graph.n g);
    Printf.printf "edges    : %d\n" (Graph.num_edges g);
    Printf.printf "diameter : %s\n"
      (match Path.diameter g with Some d -> string_of_int d | None -> "disconnected");
    Printf.printf "root deg : %d\n" (Graph.degree g Graph.root);
    0
  in
  Cmd.v
    (Cmd.info "graph" ~doc:"Print statistics of a generated topology.")
    Term.(const run $ topology $ nodes $ seed)

let twoparty_cmd =
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"String length.") in
  let q = Arg.(value & opt int 32 & info [ "q" ] ~doc:"Alphabet size (>= 2).") in
  let run n q seed =
    let rng = Prng.create seed in
    let inst = Cycle_promise.random ~rng ~n ~q () in
    let u = Unionsize.solve inst in
    Printf.printf "UNIONSIZECP(n=%d, q=%d)\n" n q;
    Printf.printf "answer     : %d (ground truth %d)\n" u.Unionsize.answer
      (Cycle_promise.union_size inst);
    Printf.printf "bits       : %d (Alice %d, Bob %d)\n" u.Unionsize.total_bits
      u.Unionsize.alice_bits u.Unionsize.bob_bits;
    Printf.printf "upper bound: %.0f    lower bound: %.0f\n"
      (Bounds.unionsize_upper ~n ~q) (Bounds.unionsize_lower ~n ~q);
    let e = Equality.solve inst in
    Printf.printf "EQUALITYCP : %b (ground truth %b), %d bits (%d oracle + %d overhead)\n"
      e.Equality.equal (Cycle_promise.equal inst) e.Equality.total_bits
      e.Equality.oracle_bits e.Equality.overhead_bits;
    0
  in
  Cmd.v
    (Cmd.info "twoparty" ~doc:"Run the §7 two-party protocols on a random instance.")
    Term.(const run $ n $ q $ seed)

let worstcase_cmd =
  let f = Arg.(value & opt int 8 & info [ "f" ] ~doc:"Edge-failure budget per cell.") in
  let b = Arg.(value & opt int 63 & info [ "b" ] ~doc:"Time budget in flooding rounds.") in
  let run n f b seed =
    let land_ = Worstcase.sweep_tradeoff ~n ~f ~b ~seed () in
    let table =
      Table.create
        ~title:(Printf.sprintf "Algorithm 1 across topology x adversary (N=%d, f=%d, b=%d)" n f b)
        [
          ("topology", Table.Left);
          ("adversary", Table.Left);
          ("CC", Table.Right);
          ("TC (fl)", Table.Right);
          ("correct", Table.Right);
        ]
    in
    List.iter
      (fun c ->
        Table.add_row table
          [
            c.Worstcase.family;
            c.Worstcase.adversary;
            string_of_int c.Worstcase.cc;
            string_of_int c.Worstcase.flooding_rounds;
            string_of_bool c.Worstcase.correct;
          ])
      land_.Worstcase.cells;
    Table.print table;
    Printf.printf "worst cell: %s x %s -> %d bits
" land_.Worstcase.worst.Worstcase.family
      land_.Worstcase.worst.Worstcase.adversary land_.Worstcase.worst.Worstcase.cc;
    0
  in
  Cmd.v
    (Cmd.info "worstcase" ~doc:"Sweep the FT0 landscape for Algorithm 1.")
    Term.(const run $ nodes $ f $ b $ seed)

let dot_cmd =
  let run topology n seed =
    print_string (Graph.to_dot ~name:(Gen.family_name topology) (Gen.build topology ~n ~seed));
    0
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a generated topology as Graphviz DOT on stdout.")
    Term.(const run $ topology $ nodes $ seed)

let trace_cmd =
  let b = Arg.(value & opt int 63 & info [ "b" ] ~doc:"Time budget in flooding rounds.") in
  let f = Arg.(value & opt int 8 & info [ "f" ] ~doc:"Edge-failure budget.") in
  let tol = Arg.(value & opt (some int) None & info [ "tolerance" ] ~doc:"t for pair/agg.") in
  let fmode =
    Arg.(
      value
      & opt string "random"
      & info [ "failures" ] ~doc:"Adversary: none, random, burst, chain, neighborhood.")
  in
  let budget =
    Arg.(value & opt (some int) None & info [ "budget" ] ~doc:"Edge failures to inject (default f).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON (load it in Perfetto or chrome://tracing).")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Write the JSONL event stream.")
  in
  let limit = Arg.(value & opt int 12 & info [ "limit" ] ~doc:"Broadcast events to echo.") in
  let run protocol topology n seed b f tol fmode budget out jsonl limit =
    let graph = Gen.build topology ~n ~seed in
    let rng = Prng.create (seed + 17) in
    let inputs = Params.random_inputs ~rng ~n ~max_input:50 in
    let t = Option.value tol ~default:(max 1 (2 * f)) in
    let params = Params.make ~c:2 ~t ~graph ~inputs () in
    let window = b * params.Params.d in
    let budget = Option.value budget ~default:f in
    let failures = make_failures graph ~mode:fmode ~budget ~seed:(seed + 3) ~window in
    let obs = Obs.create ~name:(Printf.sprintf "%s-%s-n%d" protocol (Gen.family_name topology) n) () in
    let value, code, common = exec_traced ~protocol ~obs ~graph ~failures ~params ~b ~f ~seed in
    Printf.printf "%s on %s (N=%d, seed %d): %s = %s, correct %b\n" protocol
      (Gen.family_name topology) n seed params.Params.caaf.Caaf.name value common.Run.correct;
    Printf.printf "CC %d bits, TC %d rounds = %d flooding rounds\n"
      (Metrics.cc common.Run.metrics) common.Run.rounds common.Run.flooding_rounds;
    (* Echo the head of the broadcast stream. *)
    let events = Obs.events obs in
    let shown = ref 0 in
    List.iter
      (fun (e : Obs.event) ->
        if e.Obs.ev_kind = "broadcast" && !shown < limit then begin
          incr shown;
          let fld k =
            match List.assoc_opt k e.Obs.ev_fields with
            | Some (Bench_io.String v) -> v
            | Some (Bench_io.Int v) -> string_of_int v
            | _ -> "?"
          in
          Printf.printf "  r%04d n%03d  %-24s %4s bits\n" e.Obs.ev_round e.Obs.ev_node
            (fld "phase") (fld "bits")
        end)
      events;
    let broadcasts = List.length (List.filter (fun e -> e.Obs.ev_kind = "broadcast") events) in
    if broadcasts > limit then Printf.printf "  ... (%d more broadcasts)\n" (broadcasts - limit);
    (* Per-phase bit breakdown; the "(none)" bucket keeps the column sum
       equal to Metrics.total_bits. *)
    let total = Metrics.total_bits common.Run.metrics in
    let table =
      Table.create ~title:"bits by protocol phase"
        [ ("phase", Table.Left); ("broadcasts", Table.Right); ("bits", Table.Right);
          ("share", Table.Right) ]
    in
    List.iter
      (fun (phase, bits) ->
        let bc =
          Registry.counter (Obs.registry obs) ~labels:[ ("phase", phase) ] "ftagg_broadcasts_total"
        in
        Table.add_row table
          [ phase; string_of_int bc; string_of_int bits;
            Printf.sprintf "%.1f%%" (100.0 *. float_of_int bits /. float_of_int (max 1 total)) ])
      (Obs.phase_bits obs);
    Table.add_rule table;
    Table.add_row table [ "total"; string_of_int broadcasts; string_of_int total; "100.0%" ];
    Table.print table;
    (match jsonl with
    | Some path ->
      Export.write_jsonl ~path obs;
      Printf.printf "jsonl : %s (%d events)\n" path (List.length events)
    | None -> ());
    match out with
    | None -> code
    | Some path -> (
      Export.write_chrome_trace ~path obs;
      (* Self-check: the written trace must round-trip through the
         Bench_io reader (CI gates on this exit code). *)
      match Bench_io.read_file ~path with
      | Error e ->
        Printf.eprintf "trace: %s does not parse: %s\n" path e;
        3
      | Ok json ->
        let trace_events =
          match Bench_io.member "traceEvents" json with
          | Some l -> Option.value (Bench_io.to_list l) ~default:[]
          | None -> []
        in
        let span_names =
          List.filter_map
            (fun ev ->
              match (Bench_io.member "ph" ev, Bench_io.member "name" ev) with
              | Some (Bench_io.String "X"), Some (Bench_io.String name) -> Some name
              | _ -> None)
            trace_events
        in
        let spans = List.length span_names in
        let phases = List.length (List.sort_uniq compare span_names) in
        Printf.printf "trace : %s (%d span events, %d distinct phases; parses OK)\n" path spans
          phases;
        if spans = 0 then begin
          Printf.eprintf "trace: no spans recorded (is telemetry disabled?)\n";
          3
        end
        else code)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a protocol with telemetry attached: per-phase bit breakdown on stdout, optional \
          Chrome trace_event JSON and JSONL exports.")
    Term.(
      const run $ protocol_arg $ topology $ nodes $ seed $ b $ f $ tol $ fmode $ budget $ out
      $ jsonl $ limit)

let stats_cmd =
  let b = Arg.(value & opt int 63 & info [ "b" ] ~doc:"Time budget in flooding rounds.") in
  let f = Arg.(value & opt int 8 & info [ "f" ] ~doc:"Edge-failure budget.") in
  let tol = Arg.(value & opt (some int) None & info [ "tolerance" ] ~doc:"t for pair/agg.") in
  let fmode =
    Arg.(
      value
      & opt string "random"
      & info [ "failures" ] ~doc:"Adversary: none, random, burst, chain, neighborhood.")
  in
  let prom =
    Arg.(value & flag & info [ "prom" ] ~doc:"Print a Prometheus-style text dump instead.")
  in
  let scale =
    Arg.(
      value & flag
      & info [ "scale" ]
          ~doc:
            "Run AGG through the massive-scale executor instead and print its registry: the \
             scale_* series (rounds, domains, frontier edges, live bytes, bytes/node, pool \
             occupancy, minor words/round, peak RSS).  Grid/torus/regular topologies, no \
             failures; $(b,--protocol) is ignored.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~doc:"Executor partitions, one OCaml domain each (with --scale).")
  in
  let run protocol topology n seed b f tol fmode prom scale domains =
    let protocol, value, code, cc, rounds, registry =
      if scale then begin
        match Bigraph.spec_of_family topology with
        | None ->
          Printf.eprintf "ftagg: --scale supports grid, torus and regular topologies (got %s)\n"
            (Gen.family_name topology);
          exit 3
        | Some spec ->
          let bg = Bigraph.build spec ~n ~seed in
          let rng = Prng.create (seed + 17) in
          let inputs = Params.random_inputs ~rng ~n ~max_input:50 in
          let params = Scale_run.params ~t:(Option.value tol ~default:1) ~graph:bg ~inputs () in
          let registry = Registry.create () in
          let meter = Scale_mem.create ~registry ~n () in
          let o =
            Scale_run.agg ~domains ~meter ~registry ~graph:bg ~failures:(Failure.none ~n) ~params
              ~seed ()
          in
          let value, code =
            match o.Scale_run.result with
            | Agg.Value v -> (string_of_int v, 0)
            | Agg.Aborted -> ("<aborted>", 2)
          in
          ("agg(scale)", value, code, Metrics.cc o.Scale_run.metrics, o.Scale_run.rounds, registry)
      end
      else begin
        let graph = Gen.build topology ~n ~seed in
        let rng = Prng.create (seed + 17) in
        let inputs = Params.random_inputs ~rng ~n ~max_input:50 in
        let t = Option.value tol ~default:(max 1 (2 * f)) in
        let params = Params.make ~c:2 ~t ~graph ~inputs () in
        let window = b * params.Params.d in
        let failures = make_failures graph ~mode:fmode ~budget:f ~seed:(seed + 3) ~window in
        let obs = Obs.create ~name:protocol () in
        let value, code, common = exec_traced ~protocol ~obs ~graph ~failures ~params ~b ~f ~seed in
        ( protocol, value, code, Metrics.cc common.Run.metrics, common.Run.rounds,
          Obs.registry obs )
      end
    in
    if prom then print_string (Export.prometheus registry)
    else begin
      let render_labels = function
        | [] -> ""
        | labels ->
          String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
      in
      let table =
        Table.create
          ~title:(Printf.sprintf "%s (N=%d): result = %s" protocol n value)
          [ ("metric", Table.Left); ("labels", Table.Left); ("value", Table.Right) ]
      in
      List.iter
        (fun (name, labels, v) ->
          let rendered =
            match (v : Registry.value) with
            | Registry.Counter c -> string_of_int c
            | Registry.Gauge g -> Table.fmt_float g
            | Registry.Histogram h ->
              Printf.sprintf "n=%d avg=%s max=%s" h.Registry.h_count
                (Table.fmt_float (h.Registry.h_sum /. float_of_int (max 1 h.Registry.h_count)))
                (Table.fmt_float h.Registry.h_max)
          in
          Table.add_row table [ name; render_labels labels; rendered ])
        (Registry.series registry);
      Table.add_rule table;
      Table.add_row table [ "(run) cc_bits"; ""; string_of_int cc ];
      Table.add_row table [ "(run) rounds"; ""; string_of_int rounds ];
      Table.add_row table
        [ "(run) peak_rss_kb"; "";
          (match Scale_mem.peak_rss_kb () with Some kb -> string_of_int kb | None -> "n/a") ];
      Table.print table
    end;
    code
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a protocol with telemetry attached and print the metric registry (add --scale for \
          the massive-scale executor's scale_* series).")
    Term.(
      const run $ protocol_arg $ topology $ nodes $ seed $ b $ f $ tol $ fmode $ prom $ scale
      $ domains)

let rank_cmd =
  let q = Arg.(value & opt int 7 & info [ "q" ] ~doc:"Alphabet size (>= 2).") in
  let run q =
    let rank = Sperner.lemma11_rank q in
    Printf.printf "rank(M_%d) = %d = q - 1 (certified over ℚ)\n" q rank;
    Printf.printf "⇒ R₀^pri(EQUALITYCP_{n,%d}) ≥ n·log₂(q/(q−1)) = %.4f·n bits\n" q
      (Sperner.equality_lower_bound ~n:1 ~q);
    0
  in
  Cmd.v (Cmd.info "rank" ~doc:"Certify Lemma 11's rank computation.") Term.(const run $ q)

let chaos_cmd =
  let trials = Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Number of randomized trials.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Write incident JSON files into this directory.")
  in
  let bit_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "bit-cap" ]
          ~doc:
            "Override the watchdog's per-node bit cap. Lowering it below the theorems' combined \
             budget plants a violation — useful to exercise the shrink/report/replay pipeline.")
  in
  let max_n = Arg.(value & opt int 34 & info [ "max-n" ] ~doc:"Largest system size drawn.") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.") in
  let backend =
    Arg.(
      value
      & opt string "agg"
      & info [ "backend" ]
          ~doc:
            "Protocol backend the trials run (agg, flood, folklore, pushsum, flowupdating, \
             flowupdating-avg). Every random draw is backend-independent, so equal seeds \
             subject every backend to the same adversary schedules.")
  in
  let run trials seed out bit_cap max_n quiet backend =
    if Run.backend_of_string backend = None then begin
      Printf.eprintf "ftagg: unknown backend %S (have: %s)\n" backend
        (String.concat ", " (List.map fst Run.backends));
      exit 3
    end;
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    (* With an output directory, the campaign also gets a telemetry sink:
       trial/violation/shrink-progress events land in
       DIR/campaign.telemetry.jsonl and the counters in DIR/campaign.prom. *)
    let obs = Option.map (fun _ -> Obs.create ~name:"chaos-campaign" ()) out in
    let config =
      {
        Campaign.trials;
        seed;
        out_dir = out;
        bit_cap;
        max_n;
        log = (if quiet then ignore else print_endline);
        obs;
        via = None;
        backend;
      }
    in
    let o = Campaign.run config in
    (match (obs, out) with
    | Some obs, Some dir ->
      Export.write_jsonl ~path:(Filename.concat dir "campaign.telemetry.jsonl") obs;
      let oc = open_out (Filename.concat dir "campaign.prom") in
      output_string oc (Export.prometheus (Obs.registry obs));
      close_out oc
    | _ -> ());
    Printf.printf "chaos: %d trials, %d violating, %d distinct invariant(s)\n" o.Campaign.o_trials
      o.Campaign.o_violating_trials
      (List.length o.Campaign.o_incidents);
    List.iter
      (fun ((inc : Incident.t), path) ->
        Printf.printf "  %s at round %d (found by %s, shrunk in %d tries)\n"
          inc.Incident.violation.Engine.invariant inc.Incident.violation.Engine.at_round
          inc.Incident.adversary
          (match inc.Incident.shrink with Some s -> s.Incident.s_tries | None -> 0);
        Format.printf "    scenario: %a\n" Incident.pp_scenario inc.Incident.scenario;
        match path with Some p -> Printf.printf "    saved: %s\n" p | None -> ())
      o.Campaign.o_incidents;
    if o.Campaign.o_incidents = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run a randomized chaos campaign: adversaries + watchdogs + auto-shrinking.")
    Term.(const run $ trials $ seed $ out $ bit_cap $ max_n $ quiet $ backend)

let replay_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INCIDENT.json" ~doc:"Incident report.")
  in
  let run file =
    match Incident.load ~path:file with
    | Error e ->
      Printf.eprintf "replay: %s\n" e;
      3
    | Ok inc ->
      Printf.printf "incident: %s (found by %s)\n" inc.Incident.violation.Engine.invariant
        inc.Incident.adversary;
      Format.printf "scenario: %a\n" Incident.pp_scenario inc.Incident.scenario;
      (match Campaign.replay inc with
      | Some v ->
        Printf.printf "verdict: VIOLATION REPRODUCED — %s at round %d: %s\n" v.Engine.invariant
          v.Engine.at_round v.Engine.detail;
        0
      | None ->
        Printf.printf "verdict: no violation — the incident no longer reproduces\n";
        1)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Re-run a saved chaos incident and print the watchdog verdict.")
    Term.(const run $ file)

(* ---- churn scenario matrix (lib/churn) ---- *)

let scenarios_cmd =
  let topology = Arg.(value & opt topology_conv Gen.Grid & info [ "t"; "topology" ] ~doc:"Base topology family.") in
  let n = Arg.(value & opt int 36 & info [ "n" ] ~doc:"Base topology size (generation 0).") in
  let backends =
    Arg.(
      value
      & opt (list string) [ "agg"; "flowupdating" ]
      & info [ "backends" ] ~docv:"B1,B2,.."
          ~doc:
            "Protocol backends to matrix (agg, flood, folklore, pushsum, flowupdating, \
             flowupdating-avg).")
  in
  let schedules =
    Arg.(
      value
      & opt (list string) []
      & info [ "schedules" ] ~docv:"S1,S2,.."
          ~doc:
            "Churn schedules to matrix (clear-skies, steady-churn, burst-failure, adversarial); \
             all four when omitted.")
  in
  let generations =
    Arg.(value & opt int 5 & info [ "generations" ] ~doc:"Topology generations per schedule.")
  in
  let runs =
    Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Runs per generation (per schedule, per backend).")
  in
  let budget =
    Arg.(value & opt int 4 & info [ "budget" ] ~doc:"Per-run crash budget handed to the schedule.")
  in
  let b = Arg.(value & opt int 40 & info [ "b" ] ~doc:"TC budget in flooding rounds.") in
  let f = Arg.(value & opt int 4 & info [ "f" ] ~doc:"Failure budget the protocols are told.") in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the matrix as a JSON array on stdout.") in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:"Save every watchdog violation as a replayable incident JSON in this directory.")
  in
  let run topology n backends schedules generations runs budget b f seed json out =
    let bad fmt = Printf.ksprintf (fun m -> Printf.eprintf "ftagg: %s\n" m; exit 3) fmt in
    List.iter
      (fun name -> if Run.backend_of_string name = None then
          bad "unknown backend %S (have: %s)" name (String.concat ", " (List.map fst Run.backends)))
      backends;
    let schedules =
      match schedules with
      | [] -> Schedule.all
      | names ->
        List.map
          (fun name ->
            match Schedule.of_name name with
            | Some s -> s
            | None ->
              bad "unknown schedule %S (have: %s)" name
                (String.concat ", " (List.map Schedule.name Schedule.all)))
          names
    in
    if generations <= 0 || runs <= 0 then bad "generations and runs must be positive";
    (match out with
    | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
    | _ -> ());
    let saved = ref 0 in
    let on_violation (inc : Incident.t) =
      match out with
      | None -> ()
      | Some dir ->
        incr saved;
        Incident.save ~path:(Filename.concat dir (Printf.sprintf "scenario-%03d.json" !saved)) inc
    in
    let spec =
      {
        Scenario.default with
        Scenario.family = topology;
        n;
        backends;
        schedules;
        generations;
        runs_per_generation = runs;
        budget;
        b;
        f;
        seed;
      }
    in
    let reports = Scenario.run ~on_violation spec in
    if json then
      print_endline
        (Bench_io.to_string ~indent:true
           (Bench_io.List (List.map Scenario.report_to_json reports)))
    else begin
      Table.print (Scenario.table reports);
      let violations = List.fold_left (fun a r -> a + r.Scenario.r_violations) 0 reports in
      if violations > 0 then
        Printf.printf "%d watchdog violation(s)%s\n" violations
          (match out with Some dir -> Printf.sprintf " — incidents saved under %s" dir | None -> "")
    end;
    0
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:
         "Run the churn/elasticity scenario matrix: schedules x backends with percentile \
          completion reporting. Deterministic from --seed: equal seeds evolve identical \
          memberships and crash schedules.")
    Term.(
      const run $ topology $ n $ backends $ schedules $ generations $ runs $ budget $ b $ f $ seed
      $ json $ out)

(* ---- the aggregation service (lib/service) ---- *)

let service_settings_term =
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Checkpoint file: loaded on start when it exists, rewritten every \
             --checkpoint-every completions and once on exit.")
  in
  let queue =
    Arg.(value & opt (some int) None & info [ "queue" ] ~doc:"Admission queue capacity.")
  in
  let cache =
    Arg.(value & opt (some int) None & info [ "cache" ] ~doc:"Result-cache capacity (0 disables).")
  in
  let every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~doc:"Completions between auto-checkpoints (0 = off).")
  in
  let batch =
    Arg.(value & opt (some int) None & info [ "tick-batch" ] ~doc:"Jobs dispatched per tick.")
  in
  let domains =
    Arg.(
      value & opt (some int) None & info [ "domains" ] ~doc:"Domains running one tick's batch.")
  in
  let b =
    Arg.(
      value & opt (some int) None & info [ "b" ] ~doc:"Default time budget for jobs that omit b.")
  in
  let f =
    Arg.(
      value
      & opt (some int) None
      & info [ "f" ] ~doc:"Default edge-failure budget for jobs that omit f.")
  in
  let build checkpoint queue cache every batch domains b f =
    let d = Service.Reconfig.default in
    let pick field o = Option.value o ~default:field in
    let settings =
      {
        Service.Reconfig.default_b = pick d.Service.Reconfig.default_b b;
        default_f = pick d.Service.Reconfig.default_f f;
        queue_capacity = pick d.Service.Reconfig.queue_capacity queue;
        cache_capacity = pick d.Service.Reconfig.cache_capacity cache;
        checkpoint_every = pick d.Service.Reconfig.checkpoint_every every;
        tick_batch = pick d.Service.Reconfig.tick_batch batch;
        domains = pick d.Service.Reconfig.domains domains;
      }
    in
    (settings, checkpoint)
  in
  Term.(const build $ checkpoint $ queue $ cache $ every $ batch $ domains $ b $ f)

let export_telemetry ~prom ~jsonl obs =
  (match prom with
  | Some path ->
    let oc = open_out path in
    output_string oc (Export.prometheus (Obs.registry obs));
    close_out oc
  | None -> ());
  match jsonl with Some path -> Export.write_jsonl ~path obs | None -> ()

let serve_cmd =
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE" ~doc:"Write the service registry as Prometheus text on exit.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Write the service event stream as JSONL on exit.")
  in
  let listen =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Serve many concurrent clients on a socket ($(b,unix:PATH) or $(b,tcp:HOST:PORT)) \
             instead of stdin/stdout.  SIGTERM drains gracefully: pending responses are \
             flushed, the backlog runs to completion and the final checkpoint is written.")
  in
  let auth_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "auth-file" ] ~docv:"FILE"
          ~doc:
            "JSON object mapping bearer token to tenant name.  With it, every connection must \
             open with {\"op\":\"hello\",\"token\":...} (refused otherwise) and the resolved \
             tenant is stamped onto every submit.  Socket mode only.")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Shared on-disk outcome store: a directory of append-only CRC-checked segments \
             sitting behind the in-memory cache.  Several servers may point at the same \
             directory — each appends its fresh executions and reads the others', so a fleet \
             shares one warm cache across processes and restarts.")
  in
  let idle_timeout =
    Arg.(
      value
      & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections silent for this long (0 disables).  Socket mode only.")
  in
  let max_line =
    Arg.(
      value
      & opt int 65536
      & info [ "max-line" ] ~docv:"BYTES"
          ~doc:
            "Longest accepted request line; longer lines are discarded and answered with a \
             structured line_too_long error.  Socket mode only.")
  in
  let max_conns =
    Arg.(
      value
      & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:"Concurrent-connection limit; excess connections get server_busy and are closed.")
  in
  let ctl =
    Arg.(
      value
      & opt (some string) None
      & info [ "ctl" ] ~docv:"PATH"
          ~doc:
            "Unix control-socket path for zero-downtime handoff (default: $(i,LISTEN).ctl for a \
             unix listener; none for TCP unless given).  A successor started with \
             $(b,--takeover) on this path takes over the live listener without dropping \
             requests.  SIGUSR2 arms the same drain without exiting.")
  in
  let takeover =
    Arg.(
      value
      & opt (some string) None
      & info [ "takeover" ] ~docv:"CTL"
          ~doc:
            "Start as a handoff successor: request takeover on the incumbent's control socket, \
             adopt its listening socket (or rebind its address), resume from its checkpoint, \
             then serve.  --listen is not needed; the address comes from the incumbent.")
  in
  let takeover_mode =
    Arg.(
      value
      & opt (enum [ ("fd", Transport.Handoff.Fd_pass); ("rebind", Transport.Handoff.Rebind) ])
          Transport.Handoff.Fd_pass
      & info [ "takeover-mode" ] ~docv:"fd|rebind"
          ~doc:
            "How the listener moves: $(b,fd) passes the live descriptor over SCM_RIGHTS \
             (connects made during the handoff queue in the kernel, nothing is dropped); \
             $(b,rebind) has the incumbent release the address first — the TCP-friendly \
             fallback, clients ride the gap on retry.")
  in
  let run (settings, checkpoint_path) prom jsonl listen auth_file store_dir idle_timeout max_line
      max_conns ctl takeover takeover_mode =
    let fail msg =
      Printf.eprintf "serve: %s\n" msg;
      exit 3
    in
    let load_auth () =
      match auth_file with
      | None -> Transport.Session.Open
      | Some path -> (
        match Transport.Auth.load ~path with
        | Error e -> fail e
        | Ok table -> Transport.Session.Tokens table)
    in
    let auth_banner = function
      | Transport.Session.Open -> "open, hello optional"
      | Transport.Session.Tokens table ->
        Printf.sprintf "%d token(s), %d tenant(s)" (Transport.Auth.size table)
          (List.length (Transport.Auth.tenants table))
    in
    let mk_server checkpoint_path =
      let obs = Obs.create ~name:"ftagg-serve" () in
      let config = { Service.Server.settings; checkpoint_path; store_dir; name = "ftagg-serve" } in
      let t = Service.Server.create ~obs config in
      (match Service.Server.store_error t with
      | Some e -> Printf.eprintf "serve: WARNING: %s; running without the shared store\n%!" e
      | None -> ());
      (obs, t)
    in
    let serve_listener obs t ?adopted_fd lcfg =
      match Transport.Listener.create ?adopted_fd lcfg t with
      | Error e -> Error e
      | Ok listener ->
        Ok
          (fun () ->
            let code = Transport.Listener.run listener in
            export_telemetry ~prom ~jsonl obs;
            code)
    in
    match takeover with
    | Some ctl_path -> (
      (* Successor: the incumbent tells us the address and checkpoint;
         our own flags still control auth, limits and telemetry. *)
      match Transport.Handoff.Takeover.run ~mode:takeover_mode ~ctl:ctl_path () with
      | Error e -> fail (Printf.sprintf "--takeover %s: %s" ctl_path e)
      | Ok (tk, outcome) -> (
        let abort_with msg =
          Transport.Handoff.Takeover.abort tk;
          fail msg
        in
        match Transport.Listener.address_of_string outcome.Transport.Handoff.Takeover.address with
        | Error e ->
          abort_with (Printf.sprintf "incumbent address %S: %s" outcome.Transport.Handoff.Takeover.address e)
        | Ok address -> (
          let checkpoint_path =
            match checkpoint_path with
            | Some _ -> checkpoint_path
            | None -> outcome.Transport.Handoff.Takeover.checkpoint_path
          in
          let obs, t = mk_server checkpoint_path in
          (match Service.Server.restore_error t with
          | Some e ->
            (* Adopting the traffic while silently dropping the state the
               incumbent just checkpointed would be a lie; bail and let
               the incumbent resume. *)
            abort_with (Printf.sprintf "refusing takeover: %s" e)
          | None -> ());
          let auth = load_auth () in
          let lcfg =
            Transport.Listener.config ~auth ~max_line ~idle_timeout ~max_conns
              ~ctl:(Option.value ctl ~default:ctl_path) address
          in
          match serve_listener obs t ?adopted_fd:outcome.Transport.Handoff.Takeover.fd lcfg with
          | Error e -> abort_with e
          | Ok go ->
            Transport.Handoff.Takeover.confirm tk;
            Printf.eprintf "serve: took over %s (%s mode, %d job(s) restored, %s)\n%!"
              (Transport.Listener.address_to_string address)
              (Transport.Handoff.mode_to_string takeover_mode)
              (Service.Server.restored_backlog t) (auth_banner auth);
            go ())))
    | None -> (
      let obs, t = mk_server checkpoint_path in
      (match Service.Server.restore_error t with
      | Some e -> Printf.eprintf "serve: WARNING: %s; starting empty\n%!" e
      | None -> ());
      let restored = Service.Server.restored_backlog t in
      if restored > 0 then
        Printf.eprintf "serve: restored %d pending job(s) from checkpoint\n%!" restored;
      match listen with
      | None ->
        let code = Service.Server.serve t stdin stdout in
        export_telemetry ~prom ~jsonl obs;
        code
      | Some addr -> (
        match Transport.Listener.address_of_string addr with
        | Error e -> fail (Printf.sprintf "--listen %s: %s" addr e)
        | Ok address -> (
          let auth = load_auth () in
          let lcfg =
            Transport.Listener.config ~auth ~max_line ~idle_timeout ~max_conns ?ctl address
          in
          match serve_listener obs t lcfg with
          | Error e -> fail e
          | Ok go ->
            Printf.eprintf "serve: listening on %s (%s%s)\n%!"
              (Transport.Listener.address_to_string address)
              (auth_banner auth)
              (match Transport.Listener.(lcfg.ctl) with
              | Some c -> Printf.sprintf ", handoff ctl %s" c
              | None -> "");
            go ())))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived aggregation service: one JSON request per line, one response per \
          line (ops: submit, tick, drain, get, cancel, status, reconfig, checkpoint, metrics, \
          shutdown).  Default transport is stdin/stdout; --listen serves many concurrent \
          clients over a Unix or TCP socket with per-connection tenants; --takeover replaces a \
          running server with zero downtime (drain, checkpoint, fd pass, resume).")
    Term.(
      const run $ service_settings_term $ prom $ jsonl $ listen $ auth_file $ store $ idle_timeout
      $ max_line $ max_conns $ ctl $ takeover $ takeover_mode)

let client_cmd =
  let files =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"REQUESTS.jsonl"
          ~doc:"Request scripts, one JSON request per line; read in order.")
  in
  let no_drain =
    Arg.(
      value & flag & info [ "no-drain" ] ~doc:"Do not drain the backlog after the last script.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Drive a running $(b,ftagg serve --listen) server at $(b,unix:PATH) or \
             $(b,tcp:HOST:PORT) instead of an in-process one.")
  in
  let fleet =
    Arg.(
      value
      & opt (some string) None
      & info [ "fleet" ] ~docv:"EP1,EP2,..."
          ~doc:
            "Fan the workload over a comma-separated fleet of $(b,serve --listen) endpoints: \
             each submit is routed by its content digest on a consistent-hash ring (every \
             client computes the same placement), endpoints that die mid-run are failed over \
             to their ring successors, and a fleet of servers sharing a $(b,--store) directory \
             reuses each other's executions.  Submit lines from the scripts become the \
             workload (other ops are skipped); prints each completion in input order, then one \
             merged report line.  Mutually exclusive with $(b,--connect).")
  in
  let token =
    Arg.(
      value
      & opt (some string) None
      & info [ "token" ] ~docv:"TOKEN"
          ~doc:"Bearer token for the hello handshake (servers started with --auth-file).")
  in
  let tenant =
    Arg.(
      value
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:"Tenant to bind via hello on an open (no-auth) server.")
  in
  let retries =
    Arg.(
      value
      & opt int 5
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts per request over --connect (including the first).  Lost connections and \
             handoff goodbyes reconnect, re-run the handshake and resubmit — idempotent because \
             job identity is the content digest.  1 disables retry.")
  in
  let retry_backoff =
    Arg.(
      value
      & opt int 50
      & info [ "retry-backoff" ] ~docv:"MS"
          ~doc:
            "Base backoff before the first retry; doubles per attempt (capped at 40x) with \
             deterministic jitter in [0.5d, d).")
  in
  let retry_seed =
    Arg.(
      value
      & opt int 1
      & info [ "retry-seed" ] ~docv:"SEED"
          ~doc:"Jitter PRNG seed — fixes the whole backoff schedule, for reproducible runs.")
  in
  let run (settings, checkpoint_path) files no_drain connect fleet token tenant retries
      retry_backoff retry_seed =
    (* The same protocol either way: exit 2 if any response carries
       ok:false (the service refused or failed a request) or the retry
       budget for a request is exhausted; 3 on an unreadable script or a
       bad address.  Without --connect the server is in-process, driven
       through [handle] — scripting and CI without process plumbing. *)
    let fail msg =
      Printf.eprintf "client: %s\n" msg;
      exit 3
    in
    let read_script path =
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error e -> fail e
      | contents -> String.split_on_char '\n' contents
    in
    let mk_retry () =
      Transport.Client.retry ~attempts:retries ~backoff_ms:retry_backoff
        ~max_backoff_ms:(retry_backoff * 40) ~seed:retry_seed ()
    in
    match fleet with
    | Some endpoints_csv ->
      if connect <> None then fail "--fleet and --connect are mutually exclusive";
      let endpoints =
        List.filter
          (fun s -> s <> "")
          (List.map String.trim (String.split_on_char ',' endpoints_csv))
      in
      if endpoints = [] then fail "--fleet needs at least one endpoint";
      (* The workload is the scripts' submit payloads; placement happens
         client-side by digest, so non-submit ops have no single target
         and are skipped (with a note) rather than broadcast. *)
      let jobs = ref [] and skipped = ref 0 in
      let take_line line =
        if String.trim line <> "" then
          match Bench_io.of_string line with
          | Ok json when Bench_io.member "op" json = Some (Bench_io.String "submit") -> (
            match Bench_io.member "job" json with
            | Some job -> jobs := job :: !jobs
            | None -> incr skipped)
          | Ok _ | Error _ -> incr skipped
      in
      List.iter (fun path -> List.iter take_line (read_script path)) files;
      let jobs = List.rev !jobs in
      if !skipped > 0 then
        Printf.eprintf "client: --fleet skipped %d non-submit line(s)\n%!" !skipped;
      (match Fleet.run ?token ?tenant ~retry:(mk_retry ()) ~endpoints ~jobs () with
      | Error e -> fail e
      | Ok report ->
        List.iter
          (fun (_, c) -> print_endline (Bench_io.to_string ~indent:false c))
          report.Fleet.r_completions;
        print_endline (Bench_io.to_string ~indent:false (Fleet.report_to_json report));
        if report.Fleet.r_failed > 0 || report.Fleet.r_errors > 0 then 2 else 0)
    | None ->
    let refused = ref false in
    let note_response response =
      print_endline response;
      match Bench_io.of_string response with
      | Ok json when Bench_io.member "ok" json = Some (Bench_io.Bool false) -> refused := true
      | _ -> ()
    in
    let step, finish =
      match connect with
      | None ->
        let config =
          { Service.Server.settings; checkpoint_path; store_dir = None; name = "ftagg-client" }
        in
        let t = Service.Server.create config in
        ( (fun line -> note_response (Service.Server.handle t line)),
          fun () ->
            if (not no_drain) && not (Service.Server.shutdown_requested t) then
              note_response (Service.Server.handle t {|{"op":"drain"}|});
            Service.Server.finish t )
      | Some addr -> (
        let fail msg =
          Printf.eprintf "client: %s\n" msg;
          exit 3
        in
        match Transport.Listener.address_of_string addr with
        | Error e -> fail (Printf.sprintf "--connect %s: %s" addr e)
        | Ok address ->
          let s = Transport.Client.session ?token ?tenant ~retry:(mk_retry ()) address in
          let on_result = function
            | Ok response -> note_response response
            | Error (Transport.Client.Refused response) ->
              (* The handshake was refused: surface the structured line
                 and stop — retrying a bad token cannot help. *)
              note_response response;
              Transport.Client.sclose s;
              exit 2
            | Error (Transport.Client.Exhausted _ as f) ->
              Printf.eprintf "client: %s\n" (Transport.Client.failure_message f);
              Transport.Client.sclose s;
              exit 2
          in
          (* hello eagerly when an identity was given, so the handshake
             response is printed before any request (as a lone blocking
             hello used to) and a refusal stops before the first job. *)
          (match (token, tenant) with
          | None, None -> ()
          | _ ->
            on_result
              (Result.map
                 (fun r -> Option.value r ~default:"")
                 (Transport.Client.shello s)));
          ( (fun line -> on_result (Transport.Client.srequest s line)),
            fun () ->
              if not no_drain then on_result (Transport.Client.srequest s {|{"op":"drain"}|});
              Transport.Client.sclose s ))
    in
    let submit_line line = if String.trim line <> "" then step line in
    let run_file path =
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error e ->
        Printf.eprintf "client: %s\n" e;
        exit 3
      | contents -> List.iter submit_line (String.split_on_char '\n' contents)
    in
    List.iter run_file files;
    finish ();
    if !refused then 2 else 0
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Feed service request scripts to a server and print the responses: in-process by \
          default, or a running serve --listen socket via --connect (with automatic \
          retry/backoff across restarts and live handoffs).")
    Term.(
      const run $ service_settings_term $ files $ no_drain $ connect $ fleet $ token $ tenant
      $ retries $ retry_backoff $ retry_seed)

let () =
  let doc = "fault-tolerant aggregation with near-optimal communication-time tradeoff" in
  let info = Cmd.info "ftagg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd; graph_cmd; twoparty_cmd; rank_cmd; worstcase_cmd; dot_cmd; trace_cmd;
            stats_cmd; chaos_cmd; replay_cmd; scenarios_cmd; serve_cmd; client_cmd;
          ]))
